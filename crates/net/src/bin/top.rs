//! `lmerge-top`: a live terminal dashboard over the metrics endpoint.
//!
//! ```text
//! lmerge-top --addr 127.0.0.1:9901 --interval-ms 1000
//! ```
//!
//! Scrapes `lmerge-ingest --metrics` (or any [`lmerge_obs::MetricsServer`])
//! each interval and redraws: watermark progress and real-time lag, active
//! SLO alerts, per-input session/frame/byte/queue state, and per-shard
//! queue depths. `--once` prints a single frame without clearing the
//! screen — the mode CI smoke tests use.

use lmerge_obs::{parse_prometheus, scrape, ScrapedSample};
use std::process::ExitCode;
use std::thread;
use std::time::Duration;

struct Args {
    addr: String,
    interval_ms: u64,
    iterations: u64,
    clear: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:9901".to_string(),
        interval_ms: 1000,
        iterations: 0, // 0 = until the endpoint goes away
        clear: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--interval-ms" => {
                args.interval_ms = value("--interval-ms")?
                    .parse()
                    .map_err(|e| format!("--interval-ms: {e}"))?
            }
            "--iterations" => {
                args.iterations = value("--iterations")?
                    .parse()
                    .map_err(|e| format!("--iterations: {e}"))?
            }
            "--once" => {
                args.iterations = 1;
                args.clear = false;
            }
            "--no-clear" => args.clear = false,
            "--help" | "-h" => {
                return Err("usage: lmerge-top [--addr HOST:PORT] [--interval-ms N] \
                     [--iterations N] [--once] [--no-clear]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Largest value of a label-free (or single-series) metric.
fn max_of(samples: &[ScrapedSample], name: &str) -> Option<f64> {
    samples
        .iter()
        .filter(|s| s.name == name)
        .map(|s| s.value)
        .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
}

/// Value of `name` for a given label pair, if present.
fn labeled(samples: &[ScrapedSample], name: &str, key: &str, val: &str) -> Option<f64> {
    samples
        .iter()
        .find(|s| s.name == name && s.label(key) == Some(val))
        .map(|s| s.value)
}

/// Sorted distinct values of `key` across every series of `name`.
fn label_values(samples: &[ScrapedSample], name: &str, key: &str) -> Vec<String> {
    let mut vals: Vec<String> = samples
        .iter()
        .filter(|s| s.name == name)
        .filter_map(|s| s.label(key).map(str::to_string))
        .collect();
    vals.sort_by_key(|v| v.parse::<u64>().unwrap_or(u64::MAX));
    vals.dedup();
    vals
}

fn fmt_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

/// A fixed-width occupancy bar, `####....`-style (ASCII so it renders in
/// any terminal CI captures).
fn bar(fill: f64, width: usize) -> String {
    let fill = fill.clamp(0.0, 1.0);
    let on = (fill * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < on { '#' } else { '.' });
    }
    s
}

/// Render one dashboard frame from a parsed scrape. Pure — unit-testable
/// without a socket.
fn render(samples: &[ScrapedSample]) -> String {
    let mut out = String::new();
    let uptime_s = max_of(samples, "lmerge_uptime_ms").unwrap_or(0.0) / 1000.0;
    let stable = max_of(samples, "lmerge_output_stable");
    let lag_ms = max_of(samples, "lmerge_watermark_lag_ms");
    out.push_str(&format!(
        "lmerge-top  up {uptime_s:.1}s  watermark {}  lag {}\n",
        stable.map_or("-".to_string(), fmt_count),
        lag_ms.map_or("-".to_string(), |v| format!("{v:.0}ms")),
    ));
    let emitted: f64 = samples
        .iter()
        .filter(|s| s.name == "lmerge_elements_emitted_total")
        .map(|s| s.value)
        .sum();
    let resumes: f64 = samples
        .iter()
        .filter(|s| s.name == "lmerge_net_resumes_total")
        .map(|s| s.value)
        .sum();
    out.push_str(&format!(
        "emitted {}  resumes {}  ring-dropped {}\n",
        fmt_count(emitted),
        fmt_count(resumes),
        max_of(samples, "lmerge_trace_ring_dropped_total").map_or("-".to_string(), fmt_count),
    ));

    // Active SLO alerts, loudest first.
    let mut alerts: Vec<&ScrapedSample> = samples
        .iter()
        .filter(|s| s.name == "lmerge_alert_active" && s.value > 0.0)
        .collect();
    alerts.sort_by_key(|s| s.label("rule").unwrap_or("").to_string());
    out.push('\n');
    if alerts.is_empty() {
        out.push_str("alerts: none\n");
    } else {
        out.push_str("ALERTS:\n");
        for a in alerts {
            out.push_str(&format!(
                "  [{}] {}\n",
                a.label("severity").unwrap_or("?"),
                a.label("rule").unwrap_or("?"),
            ));
        }
    }

    // Per-input net/ingest state.
    let input_ids = {
        let mut ids = label_values(samples, "lmerge_net_frames_total", "input");
        if ids.is_empty() {
            ids = label_values(samples, "lmerge_input_elements_total", "input");
        }
        ids
    };
    if !input_ids.is_empty() {
        out.push_str("\ninput  frames   bytes  seq      sess  behind\n");
        for id in &input_ids {
            let g = |name: &str| labeled(samples, name, "input", id);
            out.push_str(&format!(
                "{:>5}  {:>6}  {:>6}  {:>7}  {:>4}  {:>6}\n",
                id,
                g("lmerge_net_frames_total").map_or("-".to_string(), fmt_count),
                g("lmerge_net_bytes_total").map_or("-".to_string(), fmt_count),
                g("lmerge_net_next_seq").map_or("-".to_string(), fmt_count),
                g("lmerge_net_sessions_opened_total").map_or("-".to_string(), fmt_count),
                g("lmerge_input_behind").map_or("-".to_string(), fmt_count),
            ));
        }
    }

    // Per-shard queue occupancy.
    let shard_ids = label_values(samples, "lmerge_shard_queue_max_depth", "shard");
    if !shard_ids.is_empty() {
        out.push_str("\nshard  peak-queue\n");
        for id in &shard_ids {
            let depth = labeled(samples, "lmerge_shard_queue_max_depth", "shard", id);
            let cap = labeled(samples, "lmerge_shard_queue_capacity", "shard", id);
            let fill = match (depth, cap) {
                (Some(d), Some(c)) if c > 0.0 => d / c,
                _ => 0.0,
            };
            out.push_str(&format!(
                "{:>5}  [{}] {}\n",
                id,
                bar(fill, 20),
                depth.map_or("-".to_string(), fmt_count),
            ));
        }
    }
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut frame = 0u64;
    loop {
        let body = match scrape(&args.addr as &str) {
            Ok(b) => b,
            Err(e) => {
                if frame == 0 {
                    eprintln!("scrape {}: {e}", args.addr);
                    return ExitCode::FAILURE;
                }
                // Endpoint went away mid-watch: the run finished.
                println!("endpoint {} closed ({e}); exiting", args.addr);
                return ExitCode::SUCCESS;
            }
        };
        let samples = parse_prometheus(&body);
        if args.clear {
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render(&samples));
        frame += 1;
        if args.iterations != 0 && frame >= args.iterations {
            return ExitCode::SUCCESS;
        }
        thread::sleep(Duration::from_millis(args.interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_obs::MetricsRegistry;

    #[test]
    fn renders_inputs_shards_and_alerts_from_a_scrape() {
        let registry = MetricsRegistry::new();
        registry
            .counter("lmerge_net_frames_total", "h", &[("input", "0")])
            .add(1500);
        registry
            .counter("lmerge_net_bytes_total", "h", &[("input", "0")])
            .add(2_000_000);
        registry
            .gauge("lmerge_shard_queue_max_depth", "h", &[("shard", "0")])
            .set(12);
        registry
            .gauge("lmerge_shard_queue_capacity", "h", &[("shard", "0")])
            .set(16);
        registry
            .gauge(
                "lmerge_alert_active",
                "h",
                &[("rule", "straggler_gap"), ("severity", "warn")],
            )
            .set(1);
        let samples = parse_prometheus(&registry.render());
        let frame = render(&samples);
        assert!(frame.contains("1.5k"), "frame count rendered: {frame}");
        assert!(frame.contains("2.0M"), "byte count rendered: {frame}");
        assert!(frame.contains("[warn] straggler_gap"), "{frame}");
        assert!(frame.contains("############...."), "12/16 bar: {frame}");
    }

    #[test]
    fn empty_scrape_renders_quietly() {
        let frame = render(&[]);
        assert!(frame.contains("alerts: none"));
        assert!(frame.contains("watermark -"));
    }

    #[test]
    fn bars_clamp() {
        assert_eq!(bar(2.0, 4), "####");
        assert_eq!(bar(-1.0, 4), "....");
        assert_eq!(bar(0.5, 4), "##..");
    }
}
