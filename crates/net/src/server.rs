//! The ingest server: one TCP connection per input, feeding decoded
//! elements into the virtual-time executor through bounded SPSC rings.
//!
//! # Session lifecycle
//!
//! A client opens a connection and sends `Hello { protocol, input }`. The
//! server validates the version and input id, claims the input's producer
//! half (waiting briefly if a dying predecessor session still holds it),
//! and answers `Welcome { resume_seq, resume_stable, credits }`:
//!
//! * `resume_seq` — the next data sequence the server will accept. Data
//!   sequence numbers are the *feed index*, so a rejoining replayer
//!   simply skips `feed[..resume_seq]` — everything the server already
//!   holds (acked **or** still sitting un-popped in the ring) is covered,
//!   giving exactly-once delivery across crashes without any replay log.
//! * `resume_stable` — the last stable point the merge side actually
//!   consumed (the paper's catch-up point for a rejoining replica).
//! * `credits` — free ring slots: how many data frames the client may
//!   send before waiting for `Credit` grants.
//!
//! # Backpressure
//!
//! The ring is the hard limit: a session thread that finds it full spins
//! (the socket's TCP window then pushes back on the client). Credits are
//! the *advisory* layer that keeps well-behaved clients from ever hitting
//! that spin: the merge-side [`NetSource`] grants `credit_batch` credits
//! back each time it has popped that many items. Occupancy is sampled
//! into the server's own tracer as `net_queue_sampled` events alongside
//! `credit_granted`, `session_opened`, and `session_closed`.
//!
//! # Trace purity
//!
//! The server owns a private [`Tracer`]. Network-session events never
//! touch the *run's* tracer — a networked run must produce a trace
//! byte-identical to the in-process run of the same feeds, and it could
//! not if socket lifecycle noise leaked in.

use crate::wire::{self, Frame, WireError, PROTOCOL_VERSION};
use lmerge_core::spsc::{self, Consumer, Producer};
use lmerge_engine::{Source, TimedElement};
use lmerge_obs::{Counter, Gauge, MetricsRegistry, TraceEvent, TraceSink, Tracer};
use lmerge_temporal::{Element, Time, VTime, Value};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// One decoded element in flight between a session thread and the merge.
struct Item {
    seq: u64,
    te: TimedElement<Value>,
}

/// Ingest server sizing.
#[derive(Clone, Copy, Debug)]
pub struct IngestConfig {
    /// Number of inputs (one TCP session each).
    pub inputs: usize,
    /// Slots per input ring — the hard in-flight bound per connection.
    pub ring_capacity: usize,
    /// Credits granted back per batch of pops. Must be smaller than
    /// `ring_capacity` or clients could starve waiting for a grant.
    pub credit_batch: u32,
}

impl IngestConfig {
    /// Defaults: 256-slot rings, credits granted 32 at a time.
    pub fn new(inputs: usize) -> IngestConfig {
        IngestConfig {
            inputs,
            ring_capacity: 256,
            credit_batch: 32,
        }
    }
}

/// Wall-clock telemetry handles for one input's sessions. These are the
/// live-ops counterpart of the tracer's deterministic session events:
/// socket byte counts, spin retries, and corruption counts depend on real
/// network timing, so they live in registry atomics and never touch the
/// trace (see "Trace purity" above).
struct InputNetMetrics {
    sessions_opened: Counter,
    resumes: Counter,
    clean_closes: Counter,
    lost_closes: Counter,
    frames: Counter,
    bytes: Counter,
    credits: Counter,
    ring_full_stalls: Counter,
    checksum_failures: Counter,
    next_seq: Gauge,
    queue_depth: Gauge,
}

/// Per-input live telemetry for an ingest server, pre-registered at bind
/// so session threads only ever touch lock-free handles.
pub struct NetMetrics {
    inputs: Vec<InputNetMetrics>,
}

impl NetMetrics {
    /// Register the per-input series (`input` label = input id) in
    /// `registry` for `inputs` inputs.
    pub fn new(registry: &MetricsRegistry, inputs: usize) -> NetMetrics {
        let inputs = (0..inputs)
            .map(|i| {
                let id = i.to_string();
                let l: [(&str, &str); 1] = [("input", id.as_str())];
                InputNetMetrics {
                    sessions_opened: registry.counter(
                        "lmerge_net_sessions_opened_total",
                        "Ingest sessions accepted (handshake completed), per input.",
                        &l,
                    ),
                    resumes: registry.counter(
                        "lmerge_net_resumes_total",
                        "Sessions that resumed mid-stream (welcomed with resume_seq > 0).",
                        &l,
                    ),
                    clean_closes: registry.counter(
                        "lmerge_net_session_closes_clean_total",
                        "Sessions that ended with a clean Bye.",
                        &l,
                    ),
                    lost_closes: registry.counter(
                        "lmerge_net_session_closes_lost_total",
                        "Sessions that ended uncleanly (EOF, gap, corruption, i/o error).",
                        &l,
                    ),
                    frames: registry.counter(
                        "lmerge_net_frames_total",
                        "Data frames accepted into the ring, per input.",
                        &l,
                    ),
                    bytes: registry.counter(
                        "lmerge_net_bytes_total",
                        "Wire bytes of accepted data frames (envelope + payload + checksum).",
                        &l,
                    ),
                    credits: registry.counter(
                        "lmerge_net_credits_granted_total",
                        "Flow-control credits granted back to the client.",
                        &l,
                    ),
                    ring_full_stalls: registry.counter(
                        "lmerge_net_ring_full_stalls_total",
                        "Session-thread spin retries on a full ingest ring (credit starvation).",
                        &l,
                    ),
                    checksum_failures: registry.counter(
                        "lmerge_net_checksum_failures_total",
                        "Data frames rejected for a checksum mismatch.",
                        &l,
                    ),
                    next_seq: registry.gauge(
                        "lmerge_net_next_seq",
                        "Next data sequence the server will accept (frames consumed so far).",
                        &l,
                    ),
                    queue_depth: registry.gauge(
                        "lmerge_net_queue_depth",
                        "Ingest ring occupancy sampled at each credit grant.",
                        &l,
                    ),
                }
            })
            .collect();
        NetMetrics { inputs }
    }
}

/// Per-input state shared between the accept loop, the active session
/// thread, and the merge-side [`NetSource`].
struct InputShared {
    /// The ring's producer half. A session thread takes it while serving
    /// a connection and hands it back on exit, so a rejoining client can
    /// only stream once its predecessor is gone — one producer, ever.
    producer: Mutex<Option<Producer<Item>>>,
    /// Write half of the live connection, for merge-side `Credit`/`Ack`.
    writer: Mutex<Option<TcpStream>>,
    /// Next data sequence the server will accept (== frames consumed into
    /// the ring so far, since sequences are dense from 0).
    next_seq: AtomicU64,
    /// Raw value of the last stable point popped by the merge side.
    acked_stable: AtomicI64,
    /// Set on a clean `Bye`; tells the `NetSource` the stream is over.
    finished: AtomicBool,
    /// Items ever pushed / popped — their difference is ring occupancy.
    pushes: AtomicU64,
    pops: AtomicU64,
    capacity: u32,
}

/// State shared by every thread the server spawns.
struct ServerShared {
    inputs: Vec<InputShared>,
    shutdown: AtomicBool,
    tracer: Mutex<Tracer>,
    credit_batch: u32,
    metrics: NetMetrics,
}

impl ServerShared {
    fn trace(&self, event: TraceEvent) {
        self.tracer.lock().unwrap().record(event);
    }

    /// Send a frame to an input's live connection; best-effort (a frame
    /// to a dead connection is dropped and the writer cleared — the
    /// client will learn everything it needs from its next `Welcome`).
    fn send(&self, input: u32, frame: &Frame) {
        let mut guard = self.inputs[input as usize].writer.lock().unwrap();
        if let Some(w) = guard.as_mut() {
            if wire::write_frame(w, frame).is_err() {
                *guard = None;
            }
        }
    }
}

/// A TCP ingest server feeding `inputs` independent element streams.
pub struct IngestServer {
    local_addr: SocketAddr,
    shared: Arc<ServerShared>,
    consumers: Vec<Option<Consumer<Item>>>,
    accept: Option<JoinHandle<()>>,
}

impl IngestServer {
    /// Bind to `addr` (use port 0 for an ephemeral port) and start
    /// accepting sessions. Live telemetry lands in a private throwaway
    /// registry; use [`bind_with_metrics`](IngestServer::bind_with_metrics)
    /// to make it scrapeable.
    pub fn bind(addr: &str, config: IngestConfig) -> io::Result<IngestServer> {
        IngestServer::bind_with_metrics(addr, config, &MetricsRegistry::new())
    }

    /// Like [`bind`](IngestServer::bind), registering the per-input net
    /// series (sessions, frames, bytes, credits, stalls, corruption) in the
    /// caller's `registry` so a scrape endpoint can expose them live.
    pub fn bind_with_metrics(
        addr: &str,
        config: IngestConfig,
        registry: &MetricsRegistry,
    ) -> io::Result<IngestServer> {
        assert!(
            config.ring_capacity > config.credit_batch as usize,
            "ring_capacity must exceed credit_batch or clients starve"
        );
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let mut inputs = Vec::with_capacity(config.inputs);
        let mut consumers = Vec::with_capacity(config.inputs);
        for _ in 0..config.inputs {
            let (tx, rx) = spsc::ring::<Item>(config.ring_capacity);
            inputs.push(InputShared {
                producer: Mutex::new(Some(tx)),
                writer: Mutex::new(None),
                next_seq: AtomicU64::new(0),
                acked_stable: AtomicI64::new(Time::MIN.0),
                finished: AtomicBool::new(false),
                pushes: AtomicU64::new(0),
                pops: AtomicU64::new(0),
                capacity: config.ring_capacity as u32,
            });
            consumers.push(Some(rx));
        }
        let shared = Arc::new(ServerShared {
            inputs,
            shutdown: AtomicBool::new(false),
            tracer: Mutex::new(Tracer::new()),
            credit_batch: config.credit_batch,
            metrics: NetMetrics::new(registry, config.inputs),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(IngestServer {
            local_addr,
            shared,
            consumers,
            accept: Some(accept),
        })
    }

    /// The bound address (connect clients and proxies here).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Take the merge-side sources, one per input, in input order. Each
    /// is the single consumer of its input's ring; callable once.
    pub fn sources(&mut self) -> Vec<NetSource> {
        self.consumers
            .iter_mut()
            .enumerate()
            .map(|(i, c)| NetSource {
                input: i as u32,
                consumer: c.take().expect("sources() already taken"),
                shared: Arc::clone(&self.shared),
                since_credit: 0,
                capacity: self.shared.inputs[i].capacity,
            })
            .collect()
    }

    /// The server's private session tracer (session/credit/queue events).
    pub fn tracer(&self) -> MutexGuard<'_, Tracer> {
        self.shared.tracer.lock().unwrap()
    }

    /// Per-input transport resume cursors for a checkpoint: `(frames the
    /// merge side has consumed, last acked stable point)`. The *consumed*
    /// count — not `next_seq` — is the exactly-once resume point: frames
    /// pushed into the ring but never popped die with the process, so a
    /// restarted server must have the client re-send them.
    pub fn cursors(&self) -> Vec<(u64, i64)> {
        self.cursor_handle().cursors()
    }

    /// A cloneable handle reading the live resume cursors — what a
    /// checkpoint sink polls at each cut while the server itself stays
    /// owned by the accept/teardown path.
    pub fn cursor_handle(&self) -> CursorHandle {
        CursorHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Pre-seed each input's resume cursor from a restored checkpoint.
    /// Call before any client connects: a rejoining replayer is then
    /// welcomed with `resume_seq` equal to the checkpoint's consumed
    /// prefix and replays exactly what the restored merge has not seen
    /// (PR 5's resume handshake, driven by recovered state instead of a
    /// surviving process).
    pub fn restore_cursors(&self, cursors: &[(u64, i64)]) {
        for (slot, &(next_seq, acked)) in self.shared.inputs.iter().zip(cursors) {
            slot.next_seq.store(next_seq, Ordering::Release);
            slot.acked_stable.store(acked, Ordering::Release);
        }
    }

    /// Wait (up to `timeout`) for every accepted session to finish its
    /// close handshake; returns `true` once all have. The merge side
    /// completes at watermark = ∞ — which a paced client reaches while
    /// its final `Bye` round trip is still in flight — so a driver that
    /// tears the server down the instant the merge drains would sever
    /// clean closes into lost ones. Call this between merge completion
    /// and [`shutdown`](IngestServer::shutdown).
    pub fn await_sessions_closed(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let all_closed = self
                .shared
                .metrics
                .inputs
                .iter()
                .all(|m| m.clean_closes.get() + m.lost_closes.get() >= m.sessions_opened.get());
            if all_closed {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_micros(200));
        }
    }

    /// Stop accepting, sever live sessions, and join the accept loop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        for input in &self.shared.inputs {
            if let Some(w) = input.writer.lock().unwrap().as_ref() {
                let _ = w.shutdown(Shutdown::Both);
            }
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for IngestServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let session_shared = Arc::clone(&shared);
                thread::spawn(move || session(session_shared, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_micros(500));
            }
            Err(_) => thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// Serve one connection: handshake, then pump data frames into the ring.
fn session(shared: Arc<ServerShared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let input = match wire::read_frame(&mut stream) {
        Ok(Some(Frame::Hello { protocol, input })) if protocol == PROTOCOL_VERSION => input,
        // Wrong version, wrong frame, garbage, or EOF: drop the
        // connection; there is no session to resume.
        _ => return,
    };
    if input as usize >= shared.inputs.len() {
        return;
    }
    let slot = &shared.inputs[input as usize];
    let live = &shared.metrics.inputs[input as usize];

    // Claim the producer. After an unclean disconnect the predecessor
    // session may still be unwinding, so wait a grace period for it to
    // hand the producer back rather than rejecting the rejoin.
    let mut producer = None;
    for _ in 0..4000 {
        if let Some(p) = slot.producer.lock().unwrap().take() {
            producer = Some(p);
            break;
        }
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        thread::sleep(Duration::from_micros(500));
    }
    let Some(mut producer) = producer else { return };

    let resume_seq = slot.next_seq.load(Ordering::Acquire);
    let welcome = Frame::Welcome {
        input,
        resume_seq,
        resume_stable: Time(slot.acked_stable.load(Ordering::Acquire)),
        credits: (producer.capacity() - producer.len()) as u32,
    };
    if wire::write_frame(&mut stream, &welcome).is_err() {
        *slot.producer.lock().unwrap() = Some(producer);
        return;
    }
    if let Ok(w) = stream.try_clone() {
        *slot.writer.lock().unwrap() = Some(w);
    }
    shared.trace(TraceEvent::SessionOpened {
        at: VTime(resume_seq),
        input,
        resume_seq,
    });
    live.sessions_opened.inc();
    if resume_seq > 0 {
        live.resumes.inc();
    }

    let mut expected = resume_seq;
    let clean = 'conn: loop {
        match wire::read_frame_sized(&mut stream) {
            Ok(Some((Frame::Data { seq, at, element }, size))) => {
                if seq < expected {
                    // Duplicate from before the resume point (client
                    // raced a reconnect); exactly-once by dropping here.
                    continue;
                }
                if seq > expected {
                    break 'conn false; // gap: protocol violation
                }
                let mut item = Item {
                    seq,
                    te: TimedElement::new(at, element),
                };
                // Ring full ⇒ spin; TCP flow control does the rest.
                while let Err(back) = producer.push(item) {
                    item = back;
                    live.ring_full_stalls.inc();
                    if shared.shutdown.load(Ordering::Relaxed) {
                        break 'conn false;
                    }
                    thread::sleep(Duration::from_micros(50));
                }
                expected += 1;
                slot.next_seq.store(expected, Ordering::Release);
                slot.pushes.fetch_add(1, Ordering::Relaxed);
                live.frames.inc();
                live.bytes.add(size as u64);
                live.next_seq.set(expected as i64);
            }
            Ok(Some((Frame::Bye, _))) => {
                // Release ordering pairs with the NetSource's Acquire
                // load: once it sees `finished`, every push is visible.
                slot.finished.store(true, Ordering::Release);
                // Acknowledge the close: through a faulty transport a
                // client's successful *write* of `Bye` does not prove
                // *delivery*, so it only reports a clean session once
                // this echo arrives (and resends the `Bye` otherwise).
                shared.send(input, &Frame::Bye);
                break 'conn true;
            }
            // EOF without Bye: the replica died mid-stream. Leave
            // `finished` unset — the ring keeps what arrived, and the
            // replica may rejoin and resume from `next_seq`.
            Ok(None) => break 'conn false,
            Ok(Some(_)) => break 'conn false, // wrong frame for this state
            Err(WireError::Checksum { .. }) => {
                live.checksum_failures.inc();
                break 'conn false;
            }
            Err(_) => break 'conn false, // truncated/io
        }
    };

    *slot.writer.lock().unwrap() = None;
    *slot.producer.lock().unwrap() = Some(producer);
    shared.trace(TraceEvent::SessionClosed {
        at: VTime(slot.next_seq.load(Ordering::Relaxed)),
        input,
        clean,
    });
    if clean {
        live.clean_closes.inc();
    } else {
        live.lost_closes.inc();
    }
}

/// A cloneable reader of the server's live per-input resume cursors
/// (see [`IngestServer::cursors`]).
#[derive(Clone)]
pub struct CursorHandle {
    shared: Arc<ServerShared>,
}

impl CursorHandle {
    /// `(popped frames, acked stable)` per input, in input order.
    ///
    /// A pop count includes the frame the executor has staged but not
    /// yet merged; `DurableCheckpointSink` discounts staged frames when
    /// persisting, so checkpointed cursors mean *delivered into the
    /// merge* and a restored server replays the staged frame.
    pub fn cursors(&self) -> Vec<(u64, i64)> {
        self.shared
            .inputs
            .iter()
            .map(|s| {
                (
                    s.pops.load(Ordering::Acquire),
                    s.acked_stable.load(Ordering::Acquire),
                )
            })
            .collect()
    }
}

/// The merge-side end of one ingest ring: an engine [`Source`] that
/// blocks until the connected replica delivers (or finishes), grants
/// credits as it drains, and acks consumed stable points.
pub struct NetSource {
    input: u32,
    consumer: Consumer<Item>,
    shared: Arc<ServerShared>,
    since_credit: u32,
    capacity: u32,
}

impl NetSource {
    /// The input id this source feeds.
    pub fn input(&self) -> u32 {
        self.input
    }

    fn after_pop(&mut self, item: &Item) {
        let slot = &self.shared.inputs[self.input as usize];
        let pops = slot.pops.fetch_add(1, Ordering::Relaxed) + 1;
        if let Element::Stable(t) = item.te.element {
            slot.acked_stable.store(t.0, Ordering::Release);
            self.shared.send(
                self.input,
                &Frame::Ack {
                    seq: item.seq,
                    stable: t,
                },
            );
        }
        self.since_credit += 1;
        if self.since_credit >= self.shared.credit_batch {
            let n = self.since_credit;
            self.since_credit = 0;
            self.shared.send(self.input, &Frame::Credit { n });
            let depth = slot.pushes.load(Ordering::Relaxed).saturating_sub(pops) as u32;
            let live = &self.shared.metrics.inputs[self.input as usize];
            live.credits.add(n as u64);
            live.queue_depth.set(depth as i64);
            self.shared.trace(TraceEvent::CreditGranted {
                at: item.te.at,
                input: self.input,
                credits: n,
            });
            self.shared.trace(TraceEvent::NetQueueSampled {
                at: item.te.at,
                input: self.input,
                depth,
                capacity: self.capacity,
            });
        }
    }
}

impl Source<Value> for NetSource {
    fn next(&mut self) -> Option<TimedElement<Value>> {
        loop {
            // Load `finished` BEFORE popping: if the flag was already set
            // and the pop still comes up empty, the Release/Acquire pair
            // guarantees no further item can appear — returning `None` is
            // race-free. (Popping first then checking the flag could miss
            // an item pushed between the two.)
            let finished = self.shared.inputs[self.input as usize]
                .finished
                .load(Ordering::Acquire);
            if let Some(item) = self.consumer.pop() {
                self.after_pop(&item);
                return Some(item.te);
            }
            if finished || self.shared.shutdown.load(Ordering::Relaxed) {
                return None;
            }
            thread::sleep(Duration::from_micros(50));
        }
    }

    fn memory_bytes(&self) -> usize {
        // Deliberately 0: the ring is constant-size preallocated transport
        // buffering, not merge state, and it is already accounted by the
        // server tracer's `net_queue_sampled` gauge. Reporting it here
        // would shift every `memory_sampled` trace line by a constant and
        // break the byte-identity between networked and in-process runs
        // of the same feeds.
        0
    }
}

/// Drain every source to completion on worker threads, returning each
/// input's full timed feed. The convenient path for batch-style runs
/// (e.g. feeding [`lmerge_engine::run_pipeline`], which wants vectors);
/// live runs hand the sources to [`lmerge_engine::Query::from_source`]
/// instead and never materialize the feeds.
pub fn drain_sources(sources: Vec<NetSource>) -> Vec<Vec<TimedElement<Value>>> {
    let handles: Vec<_> = sources
        .into_iter()
        .map(|mut s| {
            thread::spawn(move || {
                let mut feed = Vec::new();
                while let Some(te) = s.next() {
                    feed.push(te);
                }
                feed
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("drain thread panicked"))
        .collect()
}

/// Errors an ingest client/server interaction can surface to callers.
pub type NetResult<T> = Result<T, WireError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{replay, ReplayConfig};

    fn feed(n: u64) -> Vec<TimedElement<Value>> {
        let mut v: Vec<TimedElement<Value>> = (0..n)
            .map(|i| {
                TimedElement::new(
                    VTime(i * 10),
                    Element::insert(Value::bare(i as i32), i as i64, i as i64 + 5),
                )
            })
            .collect();
        v.push(TimedElement::new(
            VTime(n * 10),
            Element::stable(Time::INFINITY),
        ));
        v
    }

    #[test]
    fn single_input_round_trip() {
        let mut server = IngestServer::bind("127.0.0.1:0", IngestConfig::new(1)).unwrap();
        let addr = server.local_addr().to_string();
        let sent = feed(40);
        let client_feed = sent.clone();
        let client = thread::spawn(move || {
            replay(&addr, &client_feed, &ReplayConfig::new(0)).expect("replay")
        });
        let got = drain_sources(server.sources()).remove(0);
        let outcome = client.join().unwrap();
        assert!(outcome.clean);
        assert_eq!(outcome.sent, 41);
        assert_eq!(got, sent, "elements and stamps survive the socket");
        let tracer = server.tracer();
        assert_eq!(tracer.net().inputs()[0].sessions, 1);
        assert_eq!(tracer.net().inputs()[0].clean_closes, 1);
        drop(tracer);
    }

    #[test]
    fn small_ring_exercises_credit_backpressure() {
        let config = IngestConfig {
            inputs: 1,
            ring_capacity: 8,
            credit_batch: 4,
        };
        let mut server = IngestServer::bind("127.0.0.1:0", config).unwrap();
        let addr = server.local_addr().to_string();
        let sent = feed(200);
        let client_feed = sent.clone();
        let client = thread::spawn(move || {
            replay(&addr, &client_feed, &ReplayConfig::new(0)).expect("replay")
        });
        let got = drain_sources(server.sources()).remove(0);
        client.join().unwrap();
        assert_eq!(got, sent, "nothing lost under a tiny ring");
        let tracer = server.tracer();
        assert!(
            tracer.net().inputs()[0].credits_granted >= 190,
            "credits flowed: {}",
            tracer.net().inputs()[0].credits_granted
        );
        drop(tracer);
    }

    #[test]
    fn registry_sees_live_session_series() {
        let registry = MetricsRegistry::new();
        let mut server =
            IngestServer::bind_with_metrics("127.0.0.1:0", IngestConfig::new(1), &registry)
                .unwrap();
        let addr = server.local_addr().to_string();
        let sent = feed(60);
        let wire_bytes: u64 = sent
            .iter()
            .enumerate()
            .map(|(i, te)| {
                wire::encode(&Frame::Data {
                    seq: i as u64,
                    at: te.at,
                    element: te.element.clone(),
                })
                .len() as u64
            })
            .sum();
        let client_feed = sent.clone();
        let client = thread::spawn(move || {
            replay(&addr, &client_feed, &ReplayConfig::new(0)).expect("replay")
        });
        let got = drain_sources(server.sources()).remove(0);
        client.join().unwrap();
        assert_eq!(got, sent);
        let get = |name: &str| {
            registry
                .sum_value(name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        assert_eq!(get("lmerge_net_sessions_opened_total"), 1.0);
        assert_eq!(get("lmerge_net_session_closes_clean_total"), 1.0);
        assert_eq!(get("lmerge_net_resumes_total"), 0.0, "fresh session");
        assert_eq!(get("lmerge_net_frames_total"), 61.0);
        assert_eq!(
            get("lmerge_net_bytes_total"),
            wire_bytes as f64,
            "byte counter matches the exact wire encoding"
        );
        assert_eq!(get("lmerge_net_next_seq"), 61.0);
        assert!(get("lmerge_net_credits_granted_total") >= 32.0);
        assert_eq!(get("lmerge_net_checksum_failures_total"), 0.0);
    }

    #[test]
    fn await_sessions_closed_observes_the_bye_handshake() {
        let mut server = IngestServer::bind("127.0.0.1:0", IngestConfig::new(1)).unwrap();
        let addr = server.local_addr().to_string();
        let sent = feed(20);
        let client_feed = sent.clone();
        let client = thread::spawn(move || {
            replay(&addr, &client_feed, &ReplayConfig::new(0)).expect("replay")
        });
        let got = drain_sources(server.sources()).remove(0);
        assert_eq!(got, sent);
        assert!(
            server.await_sessions_closed(Duration::from_secs(5)),
            "clean close lands within the grace period"
        );
        assert!(client.join().unwrap().clean);
        let tracer = server.tracer();
        assert_eq!(tracer.net().inputs()[0].clean_closes, 1);
        drop(tracer);
    }

    #[test]
    fn await_sessions_closed_times_out_on_a_hung_session() {
        let registry = MetricsRegistry::new();
        let server =
            IngestServer::bind_with_metrics("127.0.0.1:0", IngestConfig::new(1), &registry)
                .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        wire::write_frame(
            &mut stream,
            &Frame::Hello {
                protocol: PROTOCOL_VERSION,
                input: 0,
            },
        )
        .unwrap();
        assert!(matches!(
            wire::read_frame(&mut stream),
            Ok(Some(Frame::Welcome { .. }))
        ));
        // Session opened but never closing: the wait must give up.
        while registry.sum_value("lmerge_net_sessions_opened_total") != Some(1.0) {
            thread::sleep(Duration::from_micros(200));
        }
        assert!(!server.await_sessions_closed(Duration::from_millis(50)));
    }

    #[test]
    fn restored_cursors_resume_a_restarted_server_exactly_once() {
        let sent = feed(40);

        // First incarnation: the client dies after 25 frames, the merge
        // side consumes exactly what arrived, and we cut a cursor image —
        // then the whole process "dies" (server dropped, ring lost).
        let mut server = IngestServer::bind("127.0.0.1:0", IngestConfig::new(1)).unwrap();
        let addr = server.local_addr().to_string();
        let client_feed = sent.clone();
        let client = thread::spawn(move || {
            replay(
                &addr,
                &client_feed,
                &ReplayConfig::new(0).with_kill_after(25),
            )
            .expect("replay")
        });
        let outcome = client.join().unwrap();
        assert!(!outcome.clean);
        assert_eq!(outcome.sent, 25);
        let mut source = server.sources().remove(0);
        let mut got: Vec<TimedElement<Value>> = Vec::new();
        for _ in 0..25 {
            got.push(source.next().expect("killed client's frames all arrive"));
        }
        let cursors = server.cursors();
        assert_eq!(cursors, vec![(25, Time::MIN.0)]);
        drop(source);
        drop(server);

        // Second incarnation on a fresh port: cursors restored from the
        // "checkpoint", the same client feed replayed. The handshake must
        // skip the consumed prefix and deliver only the missing suffix.
        let mut server = IngestServer::bind("127.0.0.1:0", IngestConfig::new(1)).unwrap();
        server.restore_cursors(&cursors);
        let addr = server.local_addr().to_string();
        let client_feed = sent.clone();
        let client = thread::spawn(move || {
            replay(&addr, &client_feed, &ReplayConfig::new(0)).expect("replay")
        });
        got.extend(drain_sources(server.sources()).remove(0));
        let outcome = client.join().unwrap();
        assert!(outcome.clean);
        assert_eq!(
            outcome.resumed_from, 25,
            "welcome carried the restored cursor"
        );
        assert_eq!(
            outcome.sent, 16,
            "only the unconsumed suffix crossed the wire"
        );
        assert_eq!(got, sent, "exactly-once across the restart");
    }

    #[test]
    fn bad_version_is_rejected_without_panicking() {
        let mut server = IngestServer::bind("127.0.0.1:0", IngestConfig::new(1)).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        wire::write_frame(
            &mut stream,
            &Frame::Hello {
                protocol: 999,
                input: 0,
            },
        )
        .unwrap();
        // The server drops the connection instead of welcoming us.
        assert!(matches!(wire::read_frame(&mut stream), Ok(None) | Err(_)));
        // The input is still claimable by a correct client afterwards.
        let addr = server.local_addr().to_string();
        let sent = feed(5);
        let client_feed = sent.clone();
        let client =
            thread::spawn(move || replay(&addr, &client_feed, &ReplayConfig::new(0)).unwrap());
        let got = drain_sources(server.sources()).remove(0);
        client.join().unwrap();
        assert_eq!(got, sent);
    }
}
