//! Egress: capturing and serializing the merged output stream.
//!
//! The executor keeps its output vector internal, so the way to observe
//! (or ship) what the merge emitted is the hooks boundary. [`NetHooks`]
//! wraps any inner [`RunHooks`] implementation, accumulates every emitted
//! element in order, and — when given a writer — encodes each one as a
//! wire `Data` frame, turning the merge's output back into the same
//! format its inputs arrived in (so a downstream LMerge could ingest it).
//!
//! **Byte-identity discipline**: wrapping hooks forces the executor down
//! its hooks-enabled path. The loopback differential tests wrap *both*
//! the networked run and the in-process run in `NetHooks`, so the two
//! executors take literally the same code path and their outputs and
//! traces can be compared byte for byte.

use crate::wire::{self, Frame};
use lmerge_engine::{ControlAction, FaultAction, NoHooks, RunHooks};
use lmerge_temporal::{Element, VTime, Value};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A hooks wrapper that captures the merged output stream and optionally
/// serializes it to a writer as wire `Data` frames.
///
/// Collection is opt-in: [`NetHooks::collector`] and [`NetHooks::wrap`]
/// retain every emitted element for the caller to inspect afterwards,
/// while [`NetHooks::streaming`] only forwards/serializes — a long-lived
/// server egress must not grow an unbounded `Vec` over an unbounded run.
pub struct NetHooks<H> {
    inner: H,
    out: Vec<Element<Value>>,
    collect: bool,
    emitted: u64,
    egress: Option<Box<dyn Write + Send>>,
    seq: u64,
}

impl NetHooks<NoHooks> {
    /// A pure output collector with no inner hooks and no egress writer.
    pub fn collector() -> NetHooks<NoHooks> {
        NetHooks::wrap(NoHooks)
    }
}

impl<H: RunHooks<Value>> NetHooks<H> {
    /// Wrap `inner`, forwarding every hook call to it while collecting
    /// the emitted output stream.
    pub fn wrap(inner: H) -> NetHooks<H> {
        NetHooks {
            inner,
            out: Vec::new(),
            collect: true,
            emitted: 0,
            egress: None,
            seq: 0,
        }
    }

    /// Wrap `inner` without retaining the output: elements are counted,
    /// forwarded, and (with an egress writer) serialized, but never
    /// accumulated. The memory footprint stays flat however long the run.
    pub fn streaming(inner: H) -> NetHooks<H> {
        let mut h = NetHooks::wrap(inner);
        h.collect = false;
        h
    }

    /// Also serialize every emitted element as a wire `Data` frame to `w`.
    #[must_use]
    pub fn with_egress(mut self, w: Box<dyn Write + Send>) -> NetHooks<H> {
        self.egress = Some(w);
        self
    }

    /// The merged output collected so far, in emission order (always
    /// empty in streaming mode).
    pub fn output(&self) -> &[Element<Value>] {
        &self.out
    }

    /// Total elements emitted through this wrapper, collected or not.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Consume the wrapper, returning the collected output and the inner
    /// hooks (whose own verdicts — e.g. a chaos oracle's violations — the
    /// caller usually wants next).
    pub fn into_parts(self) -> (Vec<Element<Value>>, H) {
        (self.out, self.inner)
    }
}

impl<H: RunHooks<Value>> RunHooks<Value> for NetHooks<H> {
    fn enabled(&self) -> bool {
        // Always on: the collector must see `on_consumed` even when the
        // inner hooks are inert, and keeping it unconditional pins both
        // sides of a differential comparison to the same executor path.
        true
    }

    fn on_deliver(
        &mut self,
        input: u32,
        at: VTime,
        elements: &[Element<Value>],
    ) -> FaultAction<Value> {
        if self.inner.enabled() {
            self.inner.on_deliver(input, at, elements)
        } else {
            FaultAction::Deliver
        }
    }

    fn on_consumed(
        &mut self,
        input: u32,
        at: VTime,
        delivered: &[Element<Value>],
        emitted: &[Element<Value>],
    ) {
        self.emitted += emitted.len() as u64;
        if self.collect {
            self.out.extend_from_slice(emitted);
        }
        if let Some(w) = &mut self.egress {
            for e in emitted {
                let frame = Frame::Data {
                    seq: self.seq,
                    at,
                    element: e.clone(),
                };
                self.seq += 1;
                if wire::write_frame(w, &frame).is_err() {
                    // A broken egress sink must not perturb the run.
                    self.egress = None;
                    break;
                }
            }
        }
        if self.inner.enabled() {
            self.inner.on_consumed(input, at, delivered, emitted);
        }
    }

    fn control(&mut self, at: VTime, actions: &mut Vec<ControlAction<Value>>) {
        if self.inner.enabled() {
            self.inner.control(at, actions);
        }
    }
}

/// A `Write` handle over a shared byte buffer — lets a test (or another
/// thread) read back what the egress path serialized.
#[derive(Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// An empty shared buffer.
    pub fn new() -> SharedBuf {
        SharedBuf::default()
    }

    /// Snapshot the bytes written so far.
    pub fn bytes(&self) -> Vec<u8> {
        self.0.lock().unwrap().clone()
    }

    /// Decode the buffer as a sequence of whole frames.
    pub fn frames(&self) -> Result<Vec<Frame>, crate::wire::WireError> {
        decode_all(&self.bytes())
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Decode every frame in `buf`; errors if any frame is malformed or the
/// buffer ends mid-frame.
pub fn decode_all(buf: &[u8]) -> Result<Vec<Frame>, crate::wire::WireError> {
    let mut frames = Vec::new();
    let mut off = 0;
    while off < buf.len() {
        let (frame, used) = wire::decode(&buf[off..])?;
        frames.push(frame);
        off += used;
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_temporal::Time;

    #[test]
    fn collector_accumulates_emitted_elements() {
        let mut h = NetHooks::collector();
        let a = Element::insert(Value::bare(1), 0, 5);
        let s = Element::<Value>::stable(Time(3));
        h.on_consumed(
            0,
            VTime(10),
            std::slice::from_ref(&a),
            &[a.clone(), s.clone()],
        );
        h.on_consumed(1, VTime(20), &[], std::slice::from_ref(&s));
        assert_eq!(h.output(), &[a, s.clone(), s]);
    }

    #[test]
    fn egress_serializes_round_trippable_frames() {
        let buf = SharedBuf::new();
        let mut h = NetHooks::collector().with_egress(Box::new(buf.clone()));
        let a = Element::insert(Value::synthetic(7, 64), 1, 9);
        let s = Element::<Value>::stable(Time(4));
        h.on_consumed(
            0,
            VTime(100),
            std::slice::from_ref(&a),
            &[a.clone(), s.clone()],
        );
        let frames = buf.frames().expect("egress stream decodes");
        assert_eq!(frames.len(), 2);
        assert_eq!(
            frames[0],
            Frame::Data {
                seq: 0,
                at: VTime(100),
                element: a
            }
        );
        assert_eq!(
            frames[1],
            Frame::Data {
                seq: 1,
                at: VTime(100),
                element: s
            }
        );
    }

    #[test]
    fn streaming_mode_never_allocates_the_collection_vec() {
        let buf = SharedBuf::new();
        let mut h = NetHooks::streaming(NoHooks).with_egress(Box::new(buf.clone()));
        let a = Element::insert(Value::bare(9), 0, 5);
        for i in 0..10_000u64 {
            h.on_consumed(0, VTime(i), &[], std::slice::from_ref(&a));
        }
        // The memory pin: 10k emitted elements, zero retained — the out
        // vector never even allocated its first block.
        assert_eq!(h.emitted(), 10_000);
        assert!(h.output().is_empty());
        assert_eq!(h.out.capacity(), 0, "streaming must not retain output");
        // …while the egress stream still carries every frame.
        assert_eq!(buf.frames().expect("egress decodes").len(), 10_000);
    }

    #[test]
    fn forwards_to_inner_hooks() {
        struct Counting {
            delivers: usize,
            consumed: usize,
        }
        impl RunHooks<Value> for Counting {
            fn enabled(&self) -> bool {
                true
            }
            fn on_deliver(
                &mut self,
                _i: u32,
                _at: VTime,
                _e: &[Element<Value>],
            ) -> FaultAction<Value> {
                self.delivers += 1;
                FaultAction::Drop
            }
            fn on_consumed(
                &mut self,
                _i: u32,
                _at: VTime,
                _d: &[Element<Value>],
                _e: &[Element<Value>],
            ) {
                self.consumed += 1;
            }
        }
        let mut h = NetHooks::wrap(Counting {
            delivers: 0,
            consumed: 0,
        });
        let e = Element::insert(Value::bare(1), 0, 1);
        assert!(matches!(
            h.on_deliver(0, VTime(1), std::slice::from_ref(&e)),
            FaultAction::Drop
        ));
        h.on_consumed(
            0,
            VTime(2),
            std::slice::from_ref(&e),
            std::slice::from_ref(&e),
        );
        let (out, inner) = h.into_parts();
        assert_eq!(out.len(), 1);
        assert_eq!((inner.delivers, inner.consumed), (1, 1));
    }
}
