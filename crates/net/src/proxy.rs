//! A chaos proxy: a TCP forwarder that injects network faults from a
//! seeded plan.
//!
//! PR 3's chaos harness injects faults *inside* the executor (drop,
//! replace, delay, detach) — it can never misbehave at the transport
//! layer. This proxy attacks the transport itself: it sits between a
//! replayer and the ingest server forwarding raw bytes, and at
//! plan-chosen byte offsets it delays a chunk, stalls the stream, or
//! resets the connection outright. Resets land mid-frame as often as
//! between frames, so they exercise the wire decoder's truncation
//! handling and the server/client resume path — while the merge output
//! must remain exactly what a fault-free run produces (checked by the
//! loopback conformance tests with the chaos oracle judging).
//!
//! The plan is deterministic: [`ProxyPlan::seeded`] derives faults from a
//! splitmix64 stream (hand-rolled; this crate keeps `rand` out of its
//! non-dev dependencies), and the plan's progress lives in state shared
//! across connections, so a client that reconnects after a reset
//! continues through the *remaining* faults instead of replaying them.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// One transport-layer fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProxyFault {
    /// Hold the next chunk for this many milliseconds (latency spike).
    DelayMs(u64),
    /// Freeze forwarding for this many milliseconds (a wedged link —
    /// long enough to trip read-side patience, short enough to recover).
    StallMs(u64),
    /// Sever both sides of the connection mid-stream.
    Reset,
}

/// Faults keyed by cumulative client→server byte offset.
#[derive(Clone, Debug, Default)]
pub struct ProxyPlan {
    /// `(offset, fault)` pairs, sorted by offset; each fires once when
    /// the forwarded byte count passes its offset.
    pub faults: Vec<(u64, ProxyFault)>,
}

impl ProxyPlan {
    /// No faults: the proxy is a transparent forwarder.
    pub fn clean() -> ProxyPlan {
        ProxyPlan::default()
    }

    /// `n` faults at deterministic offsets within `horizon_bytes` of
    /// client→server traffic.
    pub fn seeded(seed: u64, horizon_bytes: u64, n: usize) -> ProxyPlan {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut faults: Vec<(u64, ProxyFault)> = (0..n)
            .map(|_| {
                let offset = splitmix64(&mut state) % horizon_bytes.max(1);
                let fault = match splitmix64(&mut state) % 3 {
                    0 => ProxyFault::DelayMs(1 + splitmix64(&mut state) % 15),
                    1 => ProxyFault::StallMs(20 + splitmix64(&mut state) % 60),
                    _ => ProxyFault::Reset,
                };
                (offset, fault)
            })
            .collect();
        faults.sort_by_key(|&(offset, _)| offset);
        ProxyPlan { faults }
    }
}

/// The standard 64-bit splitmix generator (Steele et al.), enough
/// determinism for fault placement without a dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Plan progress, shared across every connection the proxy carries.
struct PlanState {
    faults: Vec<(u64, ProxyFault)>,
    /// Client→server bytes forwarded so far (across reconnections).
    forwarded: u64,
    /// Index of the next unfired fault.
    next: usize,
    resets: u64,
}

/// A TCP proxy in front of one upstream address.
pub struct ChaosProxy {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    state: Arc<Mutex<PlanState>>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Listen on an ephemeral local port, forwarding each accepted
    /// connection to `upstream` with `plan`'s faults applied.
    pub fn spawn(upstream: SocketAddr, plan: ProxyPlan) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let state = Arc::new(Mutex::new(PlanState {
            faults: plan.faults,
            forwarded: 0,
            next: 0,
            resets: 0,
        }));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let state = Arc::clone(&state);
            thread::spawn(move || accept_loop(listener, upstream, shutdown, state))
        };
        Ok(ChaosProxy {
            local_addr,
            shutdown,
            state,
            accept: Some(accept),
        })
    }

    /// The address clients should connect to instead of the upstream.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Faults fired so far.
    pub fn applied(&self) -> usize {
        self.state.lock().unwrap().next
    }

    /// Connection resets injected so far.
    pub fn resets(&self) -> u64 {
        self.state.lock().unwrap().resets
    }

    /// Stop accepting and join the accept loop (live forwarders drain on
    /// their own as their sockets close).
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    shutdown: Arc<AtomicBool>,
    state: Arc<Mutex<PlanState>>,
) {
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((client, _)) => {
                let Ok(server) = TcpStream::connect(upstream) else {
                    continue;
                };
                let _ = client.set_nodelay(true);
                let _ = server.set_nodelay(true);
                // Server→client leg: transparent copy.
                if let (Ok(from), Ok(to)) = (server.try_clone(), client.try_clone()) {
                    let shutdown = Arc::clone(&shutdown);
                    thread::spawn(move || forward_plain(from, to, shutdown));
                }
                // Client→server leg: fault-injecting copy.
                let state = Arc::clone(&state);
                let shutdown = Arc::clone(&shutdown);
                thread::spawn(move || forward_faulted(client, server, state, shutdown));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_micros(500));
            }
            Err(_) => thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn forward_plain(mut from: TcpStream, mut to: TcpStream, shutdown: Arc<AtomicBool>) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(100)));
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

fn forward_faulted(
    mut from: TcpStream,
    mut to: TcpStream,
    state: Arc<Mutex<PlanState>>,
    shutdown: Arc<AtomicBool>,
) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(100)));
    let mut buf = [0u8; 1024];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutdown.load(Ordering::Relaxed) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        // Fire every fault whose offset falls inside this chunk. The
        // lock is held only to *claim* faults; sleeps happen outside it
        // so a reconnected session is never blocked by plan bookkeeping.
        let mut claimed = Vec::new();
        {
            let mut st = state.lock().unwrap();
            let end = st.forwarded + n as u64;
            while st.next < st.faults.len() && st.faults[st.next].0 < end {
                let fault = st.faults[st.next].1;
                st.next += 1;
                if fault == ProxyFault::Reset {
                    st.resets += 1;
                }
                claimed.push(fault);
            }
            st.forwarded = end;
        }
        for fault in claimed {
            match fault {
                ProxyFault::DelayMs(ms) | ProxyFault::StallMs(ms) => {
                    thread::sleep(Duration::from_millis(ms));
                }
                ProxyFault::Reset => {
                    let _ = from.shutdown(Shutdown::Both);
                    let _ = to.shutdown(Shutdown::Both);
                    return;
                }
            }
        }
        if to.write_all(&buf[..n]).is_err() {
            break;
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_sorted() {
        let a = ProxyPlan::seeded(7, 100_000, 12);
        let b = ProxyPlan::seeded(7, 100_000, 12);
        assert_eq!(a.faults, b.faults);
        assert!(a.faults.windows(2).all(|w| w[0].0 <= w[1].0));
        let c = ProxyPlan::seeded(8, 100_000, 12);
        assert_ne!(a.faults, c.faults, "seed actually matters");
    }

    #[test]
    fn clean_proxy_is_transparent() {
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let echo = thread::spawn(move || {
            let (mut s, _) = upstream.accept().unwrap();
            let mut buf = Vec::new();
            s.read_to_end(&mut buf).unwrap();
            s.write_all(&buf).unwrap();
        });
        let proxy = ChaosProxy::spawn(upstream_addr, ProxyPlan::clean()).unwrap();
        let mut client = TcpStream::connect(proxy.local_addr()).unwrap();
        client.write_all(b"through the looking glass").unwrap();
        client.shutdown(Shutdown::Write).unwrap();
        let mut back = Vec::new();
        client.read_to_end(&mut back).unwrap();
        assert_eq!(back, b"through the looking glass");
        echo.join().unwrap();
        assert_eq!(proxy.applied(), 0);
    }

    #[test]
    fn reset_fault_severs_the_connection() {
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        thread::spawn(move || {
            // Swallow whatever arrives on each connection.
            while let Ok((mut s, _)) = upstream.accept() {
                thread::spawn(move || {
                    let mut sink = Vec::new();
                    let _ = s.read_to_end(&mut sink);
                });
            }
        });
        let plan = ProxyPlan {
            faults: vec![(10, ProxyFault::Reset)],
        };
        let proxy = ChaosProxy::spawn(upstream_addr, plan).unwrap();
        let mut client = TcpStream::connect(proxy.local_addr()).unwrap();
        // Keep writing until the reset lands as an error on our side.
        let mut severed = false;
        for _ in 0..1000 {
            if client.write_all(&[0u8; 16]).is_err() {
                severed = true;
                break;
            }
            thread::sleep(Duration::from_millis(1));
        }
        assert!(severed, "the reset reached the client");
        assert_eq!(proxy.resets(), 1);
        // A new connection through the same proxy works: the fault fired once.
        let mut again = TcpStream::connect(proxy.local_addr()).unwrap();
        again.write_all(b"hello again").unwrap();
    }
}
