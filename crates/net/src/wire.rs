//! The versioned, length-prefixed binary wire format.
//!
//! Every frame crossing a socket has the same envelope:
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 4    | magic `0x4C4D5247` (LE) |
//! | 4      | 2    | protocol version (LE, currently [`PROTOCOL_VERSION`]) |
//! | 6      | 1    | frame type |
//! | 7      | 1    | flags (reserved, must be 0) |
//! | 8      | 4    | payload length (LE, ≤ [`MAX_PAYLOAD_LEN`]) |
//! | 12     | n    | payload |
//! | 12+n   | 8    | FNV-1a 64 checksum of bytes `[0, 12+n)` (LE) |
//!
//! The checksum is the workspace's shared [`lmerge_core::hash`] — the same
//! function that routes shard keys — so its constants are pinned by the
//! core crate's reference vectors and cannot drift per subsystem.
//!
//! Data frames (`insert`/`adjust`/`stable`) carry two transport fields on
//! top of the element model: a per-session monotone `seq` (the replayer's
//! feed index — what resume-from-ack arithmetic runs on) and the element's
//! virtual arrival stamp `at_us`. Shipping the *virtual* time is what
//! makes networked delivery reproduce the in-process run exactly: the
//! receiving [`crate::server::NetSource`] re-creates the same
//! `TimedElement`s the in-process query would have consumed, so the
//! merge's virtual-time schedule is independent of real socket timing.
//!
//! The decoder never panics on hostile input: every malformed, truncated,
//! oversized, or corrupted frame maps to a typed [`WireError`]
//! (adversarial coverage lives in `tests/wire_adversarial.rs`).

use bytes::Bytes;
use lmerge_core::hash::Fnv1a;
use lmerge_temporal::{Element, Time, VTime, Value};
use std::io::{Read, Write};

/// Frame magic: `LMRG` interpreted as a little-endian u32.
pub const MAGIC: u32 = 0x4C4D_5247;

/// The protocol version this build speaks (offered in `hello`, echoed in
/// `welcome`; a mismatch fails the handshake).
pub const PROTOCOL_VERSION: u16 = 1;

/// Envelope bytes before the payload: magic + version + type + flags + len.
pub const HEADER_LEN: usize = 12;

/// Trailing checksum bytes.
pub const CHECKSUM_LEN: usize = 8;

/// Hard cap on a frame's payload length. A 1000-byte paper payload plus
/// transport fields is under 2 KiB, so 1 MiB leaves two orders of
/// magnitude of headroom while bounding what a hostile length field can
/// make the receiver allocate.
pub const MAX_PAYLOAD_LEN: u32 = 1 << 20;

/// Frame type tags (byte 6 of the envelope).
mod tag {
    pub const HELLO: u8 = 1;
    pub const WELCOME: u8 = 2;
    pub const INSERT: u8 = 3;
    pub const ADJUST: u8 = 4;
    pub const STABLE: u8 = 5;
    pub const CREDIT: u8 = 6;
    pub const ACK: u8 = 7;
    pub const BYE: u8 = 8;
    pub const SUBSCRIBE: u8 = 9;
}

/// Typed decode/transport failure. Every hostile input maps here; the
/// decoder has no panicking paths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer or stream ended inside a frame.
    Truncated,
    /// The first four bytes are not [`MAGIC`].
    BadMagic(u32),
    /// The peer speaks a protocol version this build does not.
    BadVersion(u16),
    /// Unknown frame type tag.
    UnknownType(u8),
    /// Reserved flags byte was non-zero.
    BadFlags(u8),
    /// The length field exceeds [`MAX_PAYLOAD_LEN`].
    Oversized(u32),
    /// The trailing checksum does not match the frame bytes.
    Checksum {
        /// Checksum computed over the received bytes.
        expected: u64,
        /// Checksum the frame carried.
        got: u64,
    },
    /// The payload does not parse as its frame type claims.
    Malformed(&'static str),
    /// An I/O error from the underlying stream.
    Io(std::io::ErrorKind),
    /// The peer violated the session protocol (wrong frame for the state).
    Protocol(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:#010x}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownType(t) => write!(f, "unknown frame type {t}"),
            WireError::BadFlags(x) => write!(f, "reserved flags set: {x:#04x}"),
            WireError::Oversized(n) => {
                write!(f, "payload length {n} exceeds cap {MAX_PAYLOAD_LEN}")
            }
            WireError::Checksum { expected, got } => {
                write!(
                    f,
                    "checksum mismatch: computed {expected:#018x}, frame carried {got:#018x}"
                )
            }
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
            WireError::Io(kind) => write!(f, "i/o error: {kind:?}"),
            WireError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e.kind())
    }
}

/// One decoded wire frame.
///
/// The three element kinds collapse into [`Frame::Data`]: transport cares
/// about `seq`/`at`, not about which kind it is moving, and the encoder
/// picks the tag from the element itself.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Client → server: open a session for one input.
    Hello {
        /// The protocol version the client speaks.
        protocol: u16,
        /// The input id this connection will feed.
        input: u32,
    },
    /// Server → client: session accepted; resume/credit state.
    Welcome {
        /// Echo of the session's input id.
        input: u32,
        /// First frame sequence the server will accept (0 = from the top;
        /// a rejoining client skips everything below this).
        resume_seq: u64,
        /// The last stable point the server durably consumed from this
        /// input (`Time::MIN` if none) — the paper's catch-up point.
        resume_stable: Time,
        /// Initial frame credits (ring slots currently free).
        credits: u32,
    },
    /// A timed stream element (insert, adjust, or stable punctuation).
    Data {
        /// Session-monotone sequence number (the feed index).
        seq: u64,
        /// The element's virtual arrival time.
        at: VTime,
        /// The element itself.
        element: Element<Value>,
    },
    /// Server → client: `n` more frame credits (ring slots freed).
    Credit {
        /// Credits granted.
        n: u32,
    },
    /// Server → client: durable-consumption acknowledgement.
    Ack {
        /// Highest data sequence consumed by the merge side.
        seq: u64,
        /// The stable point that consumption reached.
        stable: Time,
    },
    /// Clean end of stream (either direction).
    Bye,
    /// Client → egress server: open a subscription to the merged output.
    ///
    /// The symmetric mirror of [`Frame::Hello`]: the server answers with a
    /// [`Frame::Welcome`] whose `resume_seq` is the first output sequence
    /// it will actually send (clamped up to the compaction horizon when
    /// the requested prefix is gone), then streams [`Frame::Data`] frames
    /// against the subscriber's credits.
    Subscribe {
        /// The protocol version the subscriber speaks.
        protocol: u16,
        /// The subscriber's stable identity (cursor key across rejoins).
        subscriber: u64,
        /// Index of the filter class this session wants.
        filter: u32,
        /// First output sequence the subscriber still needs (0 = from the
        /// top; a rejoining subscriber skips everything below this).
        resume_from: u64,
        /// Initial frame credits the subscriber grants the server.
        credits: u32,
    },
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked little-endian cursor over a payload slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(WireError::Malformed("field past payload end"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after payload fields"))
        }
    }
}

impl Frame {
    /// The frame's type tag.
    fn tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => tag::HELLO,
            Frame::Welcome { .. } => tag::WELCOME,
            Frame::Data { element, .. } => match element {
                Element::Insert(_) => tag::INSERT,
                Element::Adjust { .. } => tag::ADJUST,
                Element::Stable(_) => tag::STABLE,
            },
            Frame::Credit { .. } => tag::CREDIT,
            Frame::Ack { .. } => tag::ACK,
            Frame::Bye => tag::BYE,
            Frame::Subscribe { .. } => tag::SUBSCRIBE,
        }
    }

    fn encode_payload(&self, buf: &mut Vec<u8>) {
        match self {
            Frame::Hello { protocol, input } => {
                put_u16(buf, *protocol);
                put_u32(buf, *input);
            }
            Frame::Welcome {
                input,
                resume_seq,
                resume_stable,
                credits,
            } => {
                put_u32(buf, *input);
                put_u64(buf, *resume_seq);
                put_i64(buf, resume_stable.0);
                put_u32(buf, *credits);
            }
            Frame::Data { seq, at, element } => {
                put_u64(buf, *seq);
                put_u64(buf, at.0);
                match element {
                    Element::Insert(e) => {
                        put_i64(buf, e.vs.0);
                        put_i64(buf, e.ve.0);
                        put_i64(buf, e.payload.key as i64);
                        put_u32(buf, e.payload.body.len() as u32);
                        buf.extend_from_slice(&e.payload.body);
                    }
                    Element::Adjust {
                        payload,
                        vs,
                        vold,
                        ve,
                    } => {
                        put_i64(buf, vs.0);
                        put_i64(buf, vold.0);
                        put_i64(buf, ve.0);
                        put_i64(buf, payload.key as i64);
                        put_u32(buf, payload.body.len() as u32);
                        buf.extend_from_slice(&payload.body);
                    }
                    Element::Stable(t) => {
                        put_i64(buf, t.0);
                    }
                }
            }
            Frame::Credit { n } => put_u32(buf, *n),
            Frame::Ack { seq, stable } => {
                put_u64(buf, *seq);
                put_i64(buf, stable.0);
            }
            Frame::Bye => {}
            Frame::Subscribe {
                protocol,
                subscriber,
                filter,
                resume_from,
                credits,
            } => {
                put_u16(buf, *protocol);
                put_u64(buf, *subscriber);
                put_u32(buf, *filter);
                put_u64(buf, *resume_from);
                put_u32(buf, *credits);
            }
        }
    }
}

/// Encode one frame, appending its full envelope to `buf`.
pub fn encode_into(frame: &Frame, buf: &mut Vec<u8>) {
    let start = buf.len();
    put_u32(buf, MAGIC);
    put_u16(buf, PROTOCOL_VERSION);
    buf.push(frame.tag());
    buf.push(0); // flags
    put_u32(buf, 0); // payload length, patched below
    frame.encode_payload(buf);
    let payload_len = (buf.len() - start - HEADER_LEN) as u32;
    buf[start + 8..start + 12].copy_from_slice(&payload_len.to_le_bytes());
    let mut h = Fnv1a::new();
    h.update(&buf[start..]);
    put_u64(buf, h.value());
}

/// Encode one frame into a fresh buffer.
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + CHECKSUM_LEN + 32);
    encode_into(frame, &mut buf);
    buf
}

fn parse_payload(frame_type: u8, payload: &[u8]) -> Result<Frame, WireError> {
    let mut c = Cursor::new(payload);
    let frame = match frame_type {
        tag::HELLO => Frame::Hello {
            protocol: c.u16()?,
            input: c.u32()?,
        },
        tag::WELCOME => Frame::Welcome {
            input: c.u32()?,
            resume_seq: c.u64()?,
            resume_stable: Time(c.i64()?),
            credits: c.u32()?,
        },
        tag::INSERT => {
            let seq = c.u64()?;
            let at = VTime(c.u64()?);
            let vs = Time(c.i64()?);
            let ve = Time(c.i64()?);
            let key = read_key(&mut c)?;
            let body = read_body(&mut c)?;
            Frame::Data {
                seq,
                at,
                element: Element::insert(Value { key, body }, vs, ve),
            }
        }
        tag::ADJUST => {
            let seq = c.u64()?;
            let at = VTime(c.u64()?);
            let vs = Time(c.i64()?);
            let vold = Time(c.i64()?);
            let ve = Time(c.i64()?);
            let key = read_key(&mut c)?;
            let body = read_body(&mut c)?;
            Frame::Data {
                seq,
                at,
                element: Element::Adjust {
                    payload: Value { key, body },
                    vs,
                    vold,
                    ve,
                },
            }
        }
        tag::STABLE => Frame::Data {
            seq: c.u64()?,
            at: VTime(c.u64()?),
            element: Element::Stable(Time(c.i64()?)),
        },
        tag::CREDIT => Frame::Credit { n: c.u32()? },
        tag::ACK => Frame::Ack {
            seq: c.u64()?,
            stable: Time(c.i64()?),
        },
        tag::BYE => Frame::Bye,
        tag::SUBSCRIBE => Frame::Subscribe {
            protocol: c.u16()?,
            subscriber: c.u64()?,
            filter: c.u32()?,
            resume_from: c.u64()?,
            credits: c.u32()?,
        },
        t => return Err(WireError::UnknownType(t)),
    };
    c.done()?;
    Ok(frame)
}

/// Payload keys travel as i64 for alignment but must fit the i32 field.
fn read_key(c: &mut Cursor<'_>) -> Result<i32, WireError> {
    let wide = c.i64()?;
    i32::try_from(wide).map_err(|_| WireError::Malformed("payload key exceeds i32"))
}

fn read_body(c: &mut Cursor<'_>) -> Result<Bytes, WireError> {
    let len = c.u32()? as usize;
    let body = c
        .take(len)
        .map_err(|_| WireError::Malformed("body_len past payload end"))?;
    Ok(Bytes::from(body.to_vec()))
}

/// Validate an envelope header, returning `(frame_type, payload_len)`.
fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(u8, u32), WireError> {
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(header[4..6].try_into().unwrap());
    if version != PROTOCOL_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let frame_type = header[6];
    if !(tag::HELLO..=tag::SUBSCRIBE).contains(&frame_type) {
        return Err(WireError::UnknownType(frame_type));
    }
    if header[7] != 0 {
        return Err(WireError::BadFlags(header[7]));
    }
    let payload_len = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if payload_len > MAX_PAYLOAD_LEN {
        return Err(WireError::Oversized(payload_len));
    }
    Ok((frame_type, payload_len))
}

fn verify_checksum(frame_bytes: &[u8], carried: u64) -> Result<(), WireError> {
    let mut h = Fnv1a::new();
    h.update(frame_bytes);
    if h.value() != carried {
        return Err(WireError::Checksum {
            expected: h.value(),
            got: carried,
        });
    }
    Ok(())
}

/// Decode one frame from the front of `buf`, returning it and the bytes
/// consumed. [`WireError::Truncated`] means "not a whole frame yet" — a
/// streaming caller can read more and retry.
pub fn decode(buf: &[u8]) -> Result<(Frame, usize), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let header: &[u8; HEADER_LEN] = buf[..HEADER_LEN].try_into().unwrap();
    let (frame_type, payload_len) = parse_header(header)?;
    let total = HEADER_LEN + payload_len as usize + CHECKSUM_LEN;
    if buf.len() < total {
        return Err(WireError::Truncated);
    }
    let carried = u64::from_le_bytes(buf[total - CHECKSUM_LEN..total].try_into().unwrap());
    verify_checksum(&buf[..total - CHECKSUM_LEN], carried)?;
    let frame = parse_payload(frame_type, &buf[HEADER_LEN..total - CHECKSUM_LEN])?;
    Ok((frame, total))
}

/// Read one frame from a stream. `Ok(None)` means clean EOF at a frame
/// boundary; EOF inside a frame is [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, WireError> {
    Ok(read_frame_sized(r)?.map(|(frame, _)| frame))
}

/// Like [`read_frame`], additionally returning the frame's full on-wire
/// size (envelope + payload + checksum) — the raw material for per-session
/// byte counters, measured at the decoder so it is exact rather than a
/// re-encoding estimate.
pub fn read_frame_sized(r: &mut impl Read) -> Result<Option<(Frame, usize)>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0usize;
    while got < HEADER_LEN {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let (frame_type, payload_len) = parse_header(&header)?;
    let mut rest = vec![0u8; payload_len as usize + CHECKSUM_LEN];
    r.read_exact(&mut rest).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e.kind())
        }
    })?;
    let payload_end = payload_len as usize;
    let carried = u64::from_le_bytes(rest[payload_end..].try_into().unwrap());
    let mut h = Fnv1a::new();
    h.update(&header);
    h.update(&rest[..payload_end]);
    if h.value() != carried {
        return Err(WireError::Checksum {
            expected: h.value(),
            got: carried,
        });
    }
    let frame = parse_payload(frame_type, &rest[..payload_end])?;
    Ok(Some((frame, HEADER_LEN + payload_end + CHECKSUM_LEN)))
}

/// Encode and write one frame to a stream.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&encode(frame))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                protocol: PROTOCOL_VERSION,
                input: 2,
            },
            Frame::Welcome {
                input: 2,
                resume_seq: 17,
                resume_stable: Time(40),
                credits: 256,
            },
            Frame::Data {
                seq: 0,
                at: VTime(120),
                element: Element::insert(Value::synthetic(7, 1000), 10, 20),
            },
            Frame::Data {
                seq: 1,
                at: VTime(160),
                element: Element::adjust(Value::bare(3), Time(10), Time(20), Time(15)),
            },
            Frame::Data {
                seq: 2,
                at: VTime(200),
                element: Element::stable(Time::INFINITY),
            },
            Frame::Data {
                seq: 3,
                at: VTime(210),
                element: Element::insert(Value::bare(-4), Time::MIN, Time::INFINITY),
            },
            Frame::Credit { n: 32 },
            Frame::Ack {
                seq: 2,
                stable: Time(40),
            },
            Frame::Bye,
            Frame::Subscribe {
                protocol: PROTOCOL_VERSION,
                subscriber: 17,
                filter: 2,
                resume_from: 4096,
                credits: 128,
            },
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for f in sample_frames() {
            let bytes = encode(&f);
            let (back, used) = decode(&bytes).unwrap_or_else(|e| panic!("{f:?}: {e}"));
            assert_eq!(back, f);
            assert_eq!(used, bytes.len(), "whole frame consumed: {f:?}");
        }
    }

    #[test]
    fn frames_round_trip_concatenated() {
        let frames = sample_frames();
        let mut buf = Vec::new();
        for f in &frames {
            encode_into(f, &mut buf);
        }
        let mut off = 0;
        let mut back = Vec::new();
        while off < buf.len() {
            let (f, used) = decode(&buf[off..]).expect("stream decodes");
            back.push(f);
            off += used;
        }
        assert_eq!(back, frames);
    }

    #[test]
    fn frames_round_trip_through_a_stream() {
        let frames = sample_frames();
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut r = &buf[..];
        let mut back = Vec::new();
        while let Some(f) = read_frame(&mut r).expect("stream decodes") {
            back.push(f);
        }
        assert_eq!(back, frames);
    }

    #[test]
    fn sized_reads_tile_the_stream_exactly() {
        let frames = sample_frames();
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut r = &buf[..];
        let mut total = 0usize;
        while let Some((f, n)) = read_frame_sized(&mut r).expect("stream decodes") {
            assert_eq!(n, encode(&f).len(), "size matches the encoding: {f:?}");
            total += n;
        }
        assert_eq!(total, buf.len(), "every wire byte attributed to a frame");
    }

    #[test]
    fn infinities_survive_the_wire() {
        let f = Frame::Data {
            seq: 9,
            at: VTime(1),
            element: Element::<Value>::stable(Time::INFINITY),
        };
        let (back, _) = decode(&encode(&f)).unwrap();
        match back {
            Frame::Data { element, .. } => assert_eq!(element, Element::stable(Time::INFINITY)),
            other => panic!("wrong frame: {other:?}"),
        }
        let w = Frame::Welcome {
            input: 0,
            resume_seq: 0,
            resume_stable: Time::MIN,
            credits: 1,
        };
        let (back, _) = decode(&encode(&w)).unwrap();
        assert_eq!(back, w);
    }

    #[test]
    fn checksum_is_the_shared_fnv1a() {
        // The trailing 8 bytes must equal the core crate's one-shot FNV-1a
        // over everything before them — pinning the wire checksum to the
        // same function the shard router uses.
        let bytes = encode(&Frame::Bye);
        let body = &bytes[..bytes.len() - CHECKSUM_LEN];
        let carried = u64::from_le_bytes(bytes[bytes.len() - CHECKSUM_LEN..].try_into().unwrap());
        assert_eq!(carried, lmerge_core::hash::fnv1a(body));
    }

    #[test]
    fn empty_buffer_is_truncated_not_a_panic() {
        assert_eq!(decode(&[]).unwrap_err(), WireError::Truncated);
        assert_eq!(decode(&[0x47]).unwrap_err(), WireError::Truncated);
    }
}
