//! The replayer: stream a pre-timed feed to an ingest server.
//!
//! One call to [`replay`] is one TCP session: handshake, stream the feed
//! honouring credits, finish with `Bye`. The server's `Welcome` tells a
//! rejoining client where to resume (`feed[resume_seq..]`), so driving a
//! crash-recovery scenario is just calling `replay` again after a
//! connection died — by choice ([`ReplayConfig::kill_after`]) or by a
//! proxy-injected reset. A background reader thread consumes `Credit`
//! grants (waking the sender) and `Ack` frames (tracking the last stable
//! point the merge durably consumed).

use crate::wire::{self, Frame, WireError, PROTOCOL_VERSION};
use lmerge_engine::TimedElement;
use lmerge_temporal::{Time, Value};
use std::io::ErrorKind;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// One replay session's parameters.
#[derive(Clone, Copy, Debug)]
pub struct ReplayConfig {
    /// The input id to claim.
    pub input: u32,
    /// Real-time pacing between frames, in microseconds (0 = flat out).
    /// Pacing shapes socket timing only; virtual arrival times travel in
    /// the frames, so the merge result is pace-independent.
    pub pace_us: u64,
    /// Sever the connection (no `Bye`) after sending this many data
    /// frames — simulates a replica crash for resume testing.
    pub kill_after: Option<u64>,
}

impl ReplayConfig {
    /// Stream `input` flat out to completion.
    pub fn new(input: u32) -> ReplayConfig {
        ReplayConfig {
            input,
            pace_us: 0,
            kill_after: None,
        }
    }

    /// Sleep `us` microseconds between frames.
    #[must_use]
    pub fn with_pace_us(mut self, us: u64) -> ReplayConfig {
        self.pace_us = us;
        self
    }

    /// Crash (sever without `Bye`) after `n` data frames.
    #[must_use]
    pub fn with_kill_after(mut self, n: u64) -> ReplayConfig {
        self.kill_after = Some(n);
        self
    }
}

/// What one replay session accomplished.
#[derive(Clone, Copy, Debug)]
pub struct ReplayOutcome {
    /// Data frames sent this session.
    pub sent: u64,
    /// The resume offset the server's `Welcome` carried (0 on a first
    /// session; the crash point after a rejoin).
    pub resumed_from: u64,
    /// Whether the session ended with a server-acknowledged `Bye`
    /// (false after a kill, a connection loss, or a `Bye` the transport
    /// ate before delivery — call [`replay`] again to resume).
    pub clean: bool,
    /// Highest stable point the server acked as durably consumed.
    pub acked_stable: Time,
}

/// Credit/ack state shared with the session's reader thread.
struct ReaderState {
    credits: Mutex<u64>,
    granted: Condvar,
    gone: AtomicBool,
    acked_stable: AtomicI64,
    /// The server echoed our `Bye`: the close is durably acknowledged.
    bye_acked: AtomicBool,
}

/// Run one replay session against `addr`. Returns when the feed is fully
/// streamed (`clean == true`), the configured kill point was reached, or
/// the connection died. Transport-level failures surface as `Err`; a
/// severed-but-resumable session is `Ok` with `clean == false`.
pub fn replay(
    addr: &str,
    feed: &[TimedElement<Value>],
    config: &ReplayConfig,
) -> Result<ReplayOutcome, WireError> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    wire::write_frame(
        &mut stream,
        &Frame::Hello {
            protocol: PROTOCOL_VERSION,
            input: config.input,
        },
    )?;
    let (resume_seq, credits) = match wire::read_frame(&mut stream)? {
        Some(Frame::Welcome {
            resume_seq,
            credits,
            ..
        }) => (resume_seq, credits),
        Some(_) => return Err(WireError::Protocol("expected welcome")),
        None => return Err(WireError::Protocol("connection closed during handshake")),
    };

    let state = Arc::new(ReaderState {
        credits: Mutex::new(credits as u64),
        granted: Condvar::new(),
        gone: AtomicBool::new(false),
        acked_stable: AtomicI64::new(Time::MIN.0),
        bye_acked: AtomicBool::new(false),
    });
    let reader = {
        let stream = stream.try_clone()?;
        let state = Arc::clone(&state);
        thread::spawn(move || reader_loop(stream, state))
    };

    let mut sent = 0u64;
    let outcome = |sent, clean, state: &ReaderState| ReplayOutcome {
        sent,
        resumed_from: resume_seq,
        clean,
        acked_stable: Time(state.acked_stable.load(Ordering::Acquire)),
    };

    for (i, te) in feed.iter().enumerate().skip(resume_seq as usize) {
        if let Err(e) = take_credit(&state) {
            let _ = reader.join();
            // The server vanished mid-stream: resumable, not fatal.
            let _ = e;
            return Ok(outcome(sent, false, &state));
        }
        let frame = Frame::Data {
            seq: i as u64,
            at: te.at,
            element: te.element.clone(),
        };
        if wire::write_frame(&mut stream, &frame).is_err() {
            let _ = stream.shutdown(Shutdown::Both);
            let _ = reader.join();
            return Ok(outcome(sent, false, &state));
        }
        sent += 1;
        if config.pace_us > 0 {
            thread::sleep(Duration::from_micros(config.pace_us));
        }
        if config.kill_after == Some(sent) {
            let _ = stream.shutdown(Shutdown::Both);
            state.gone.store(true, Ordering::Relaxed);
            let _ = reader.join();
            return Ok(outcome(sent, false, &state));
        }
    }

    if wire::write_frame(&mut stream, &Frame::Bye).is_err() {
        let _ = stream.shutdown(Shutdown::Both);
        let _ = reader.join();
        return Ok(outcome(sent, false, &state));
    }
    // Half-close: the server reads the Bye, echoes it as an ack, and
    // drops the session, which closes its end and lets our reader
    // thread see EOF. A written-but-unacked `Bye` is NOT a clean close
    // — a transport fault may have eaten it after our write succeeded —
    // so the session reports unclean and the caller resumes (from
    // `resume_seq == feed.len()`, i.e. it just re-sends the `Bye`).
    let _ = stream.shutdown(Shutdown::Write);
    let _ = reader.join();
    let clean = state.bye_acked.load(Ordering::Acquire);
    Ok(outcome(sent, clean, &state))
}

/// Replay to completion, reconnecting after crashes or injected resets.
/// `pauses` real time briefly between attempts so the server can recycle
/// the session. Errors only if `max_attempts` sessions all fail to
/// finish the feed.
pub fn replay_until_clean(
    addr: &str,
    feed: &[TimedElement<Value>],
    config: &ReplayConfig,
    max_attempts: usize,
) -> Result<ReplayOutcome, WireError> {
    let mut last = WireError::Protocol("no attempts made");
    for _ in 0..max_attempts {
        match replay(addr, feed, config) {
            Ok(outcome) if outcome.clean => return Ok(outcome),
            Ok(_) => {} // severed: reconnect and resume
            Err(e) => last = e,
        }
        thread::sleep(Duration::from_millis(20));
    }
    Err(last)
}

fn take_credit(state: &ReaderState) -> Result<(), WireError> {
    let mut credits = state.credits.lock().unwrap();
    loop {
        if *credits > 0 {
            *credits -= 1;
            return Ok(());
        }
        if state.gone.load(Ordering::Relaxed) {
            return Err(WireError::Io(ErrorKind::ConnectionReset));
        }
        let (guard, _timeout) = state
            .granted
            .wait_timeout(credits, Duration::from_millis(100))
            .unwrap();
        credits = guard;
    }
}

fn reader_loop(mut stream: TcpStream, state: Arc<ReaderState>) {
    loop {
        match wire::read_frame(&mut stream) {
            Ok(Some(Frame::Credit { n })) => {
                *state.credits.lock().unwrap() += n as u64;
                state.granted.notify_all();
            }
            Ok(Some(Frame::Ack { stable, .. })) => {
                state.acked_stable.store(stable.0, Ordering::Release);
            }
            Ok(Some(Frame::Bye)) => {
                state.bye_acked.store(true, Ordering::Release);
                break;
            }
            // EOF, an unexpected frame, or any transport error ends the
            // session from our side too.
            Ok(Some(_)) | Ok(None) | Err(_) => break,
        }
    }
    state.gone.store(true, Ordering::Relaxed);
    state.granted.notify_all();
}
