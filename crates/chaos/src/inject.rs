//! The chaos injector: a [`RunHooks`] implementation that replays a
//! [`FaultPlan`] against a run and simultaneously checks conformance.
//!
//! The injector does two jobs at once:
//!
//! 1. **Inject** — at each virtual-time boundary it fires the plan's due
//!    control faults (crash, rejoin, stall) and applies the plan's window
//!    faults to batches in flight (drop on overflow, duplicate, reorder,
//!    swallow punctuation).
//! 2. **Check** — it reconstitutes every input's *actually delivered*
//!    prefix and the merge's emitted output, and runs the temporal crate's
//!    compatibility oracle whenever the output's stable point advances.
//!    A crashed replica's view stays frozen at its crash point.
//!
//! Everything is driven by the plan's seed, so a run is a pure function of
//! `(plan, feeds, variant)` — replaying it yields a byte-identical trace.

use crate::plan::{Fault, FaultPlan};
use lmerge_core::{LogicalMerge, MergeStateImage};
use lmerge_engine::hooks::{ControlAction, FaultAction, RunHooks};
use lmerge_engine::TimedElement;
use lmerge_properties::RLevel;
use lmerge_temporal::compat::{check_r3, check_r4, StreamView};
use lmerge_temporal::{Element, Reconstituter, StreamId, Time, VTime, Value};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::BTreeMap;

/// A pending crash-rejoin: the replacement replica's feed, waiting for its
/// trigger time.
struct Rejoin {
    crash_input: u32,
    rejoin_at: VTime,
    feed: Vec<TimedElement<Value>>,
    fired: bool,
}

/// Fault-plan replay + differential conformance checking for one run.
pub struct ChaosInjector {
    level: RLevel,
    faults: Vec<Fault>,
    /// One-shot control faults already fired (parallel to `faults`).
    fired: Vec<bool>,
    rejoins: Vec<Rejoin>,
    rng: StdRng,
    /// Inputs detached by a crash — excluded from the oracle.
    crashed: Vec<bool>,
    /// Inputs whose punctuation is swallowed (freeze / overflow poisoning).
    frozen: Vec<bool>,
    /// Inputs that have lost data to an overflow: their delivered stream is
    /// knowingly ill-formed (adjusts may name lost inserts), so their view
    /// is tracked best-effort instead of strictly.
    lossy: Vec<bool>,
    /// Reconstituted view of what each input actually delivered.
    in_recs: Vec<Reconstituter<Value>>,
    /// Reconstituted view of the merged output.
    out_rec: Reconstituter<Value>,
    last_checked: Time,
    checks: usize,
    violations: Vec<String>,
    /// How many times each mechanical fault label was applied.
    applied: BTreeMap<&'static str, u32>,
    /// Builds a fresh merge of the run's variant for [`Fault::CrashMerge`]
    /// (the image is restored into it). Installed by the harness, which
    /// knows the variant and policy; without one the fault is inert.
    rebuild_merge: Option<MergeRebuilder>,
}

/// Factory restoring a crashed operator: given its exported image (already
/// round-tripped through the durable codec), return a fresh restored merge
/// of the run's variant.
pub type MergeRebuilder =
    Box<dyn Fn(MergeStateImage<Value>) -> Box<dyn LogicalMerge<Value>> + Send>;

impl ChaosInjector {
    /// An injector replaying `plan` (pre-degraded for `level`) over a run
    /// whose initial inputs are fed by `feeds`. The feeds are retained so a
    /// crash-rejoin can re-deliver the victim's full stream on a new input.
    pub fn new(level: RLevel, plan: &FaultPlan, feeds: &[Vec<TimedElement<Value>>]) -> Self {
        let faults = plan.effective(level);
        let n = feeds.len();
        let rejoins = faults
            .iter()
            .filter_map(|f| match *f {
                Fault::CrashRejoin {
                    input, rejoin_at, ..
                } => Some(Rejoin {
                    crash_input: input,
                    rejoin_at,
                    feed: feeds.get(input as usize).cloned().unwrap_or_default(),
                    fired: false,
                }),
                _ => None,
            })
            .collect();
        let fired = vec![false; faults.len()];
        ChaosInjector {
            level,
            faults,
            fired,
            rejoins,
            rng: StdRng::seed_from_u64(plan.seed ^ 0x9E37_79B9_7F4A_7C15),
            crashed: vec![false; n],
            frozen: vec![false; n],
            lossy: vec![false; n],
            in_recs: (0..n).map(|_| Reconstituter::new()).collect(),
            out_rec: Reconstituter::new(),
            last_checked: Time::MIN,
            checks: 0,
            violations: Vec::new(),
            applied: BTreeMap::new(),
            rebuild_merge: None,
        }
    }

    /// Install the factory [`Fault::CrashMerge`] rebuilds the merge with:
    /// given the crashed operator's exported image (already round-tripped
    /// through the durable codec), return a fresh restored operator.
    #[must_use]
    pub fn with_merge_rebuilder(mut self, rebuild: MergeRebuilder) -> Self {
        self.rebuild_merge = Some(rebuild);
        self
    }

    /// A pure conformance checker: an injector with an empty (clean) fault
    /// plan, so it injects nothing and only reconstitutes views + runs the
    /// compatibility oracle. This is how runs whose faults happen *outside*
    /// the executor — e.g. lmerge-net's chaos proxy cutting real TCP
    /// connections — borrow the same oracle: the network layer supplies the
    /// disruption, this hook supplies the judgement.
    pub fn oracle(level: RLevel, feeds: &[Vec<TimedElement<Value>>]) -> Self {
        ChaosInjector::new(level, &FaultPlan::clean(0), feeds)
    }

    fn ensure(&mut self, i: usize) {
        while self.in_recs.len() <= i {
            self.in_recs.push(Reconstituter::new());
            self.crashed.push(false);
            self.frozen.push(false);
            self.lossy.push(false);
        }
    }

    fn note(&mut self, label: &'static str) {
        *self.applied.entry(label).or_insert(0) += 1;
    }

    /// Violations found so far (empty on a conformant run).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// How many oracle checks ran.
    pub fn checks(&self) -> usize {
        self.checks
    }

    /// `(label, times applied)` for every mechanical fault that fired.
    pub fn applied(&self) -> &BTreeMap<&'static str, u32> {
        &self.applied
    }

    /// The reconstituted output view: `(TDB via accessor, stable point)`.
    pub fn output(&self) -> &Reconstituter<Value> {
        &self.out_rec
    }

    /// The reconstituted per-input delivered views.
    pub fn inputs(&self) -> &[Reconstituter<Value>] {
        &self.in_recs
    }

    /// Whether input `i` was crashed out of the run.
    pub fn is_crashed(&self, i: usize) -> bool {
        self.crashed.get(i).copied().unwrap_or(false)
    }

    /// Run the compatibility oracle on the current prefixes: the output
    /// view must be compatible with every input's *delivered* view. A
    /// crashed replica's view stays frozen at its crash point — it is
    /// still a valid consistent prefix, and it may even hold the maximum
    /// stable point the output followed before the crash, so excluding it
    /// would wrongly flag the output as running ahead of its inputs.
    pub fn check_now(&mut self) {
        self.checks += 1;
        let views: Vec<StreamView<'_, Value>> = self
            .in_recs
            .iter()
            .map(|r| StreamView::new(r.tdb(), r.stable()))
            .collect();
        let output = StreamView::new(self.out_rec.tdb(), self.out_rec.stable());
        // R3 and the naive baseline satisfy the full C1–C3 contract; the
        // insert-only cases and the multiset case are checked against the
        // leading-input condition (Section III-D's final form).
        let result = if self.level == RLevel::R3 {
            check_r3(&views, &output)
        } else {
            check_r4(&views, &output)
        };
        if let Err(v) = result {
            self.violations.push(format!(
                "oracle violation at output stable {}: {v:?}",
                self.out_rec.stable()
            ));
        }
    }

    /// Key-preserving deterministic reorder: segments between punctuation
    /// are shuffled by assigning each `(Vs, Payload)` key a random rank in
    /// encounter order, then stable-sorting — same-key elements (an insert
    /// and its adjust chain) keep their relative order.
    fn reorder(&mut self, elements: &[Element<Value>]) -> Vec<Element<Value>> {
        let mut out = Vec::with_capacity(elements.len());
        let mut seg: Vec<Element<Value>> = Vec::new();
        for e in elements {
            if e.is_stable() {
                self.shuffle_segment(&mut seg, &mut out);
                out.push(e.clone());
            } else {
                seg.push(e.clone());
            }
        }
        self.shuffle_segment(&mut seg, &mut out);
        out
    }

    fn shuffle_segment(&mut self, seg: &mut Vec<Element<Value>>, out: &mut Vec<Element<Value>>) {
        if seg.len() < 2 {
            out.append(seg);
            return;
        }
        let mut ranks: BTreeMap<(Time, Value), u64> = BTreeMap::new();
        let mut keyed: Vec<(u64, usize, Element<Value>)> = Vec::with_capacity(seg.len());
        for (i, e) in seg.drain(..).enumerate() {
            let rank = match e.key() {
                Some((vs, p)) => *ranks
                    .entry((vs, p.clone()))
                    .or_insert_with(|| self.rng.next_u64()),
                None => self.rng.next_u64(),
            };
            keyed.push((rank, i, e));
        }
        keyed.sort_by_key(|&(rank, i, _)| (rank, i));
        out.extend(keyed.into_iter().map(|(_, _, e)| e));
    }
}

impl RunHooks<Value> for ChaosInjector {
    fn enabled(&self) -> bool {
        true
    }

    fn on_deliver(
        &mut self,
        input: u32,
        at: VTime,
        elements: &[Element<Value>],
    ) -> FaultAction<Value> {
        let i = input as usize;
        self.ensure(i);

        // Window faults due for this input at this boundary.
        let mut overflow = false;
        let mut duplicate = false;
        let mut reorder = false;
        for f in &self.faults {
            match *f {
                Fault::Overflow {
                    input: v,
                    from,
                    until,
                } if v == input => {
                    if at >= from {
                        // Data was (or is being) lost: poison punctuation
                        // and downgrade the view tracking to best-effort.
                        self.frozen[i] = true;
                        self.lossy[i] = true;
                    }
                    if at >= from && at < until {
                        overflow = true;
                    }
                }
                Fault::FreezeStable { input: v, from } if v == input && at >= from => {
                    self.frozen[i] = true;
                }
                Fault::DuplicateBatches {
                    input: v,
                    from,
                    until,
                } if v == input && at >= from && at < until => {
                    duplicate = true;
                }
                Fault::ReorderBatches {
                    input: v,
                    from,
                    until,
                } if v == input && at >= from && at < until => {
                    reorder = true;
                }
                _ => {}
            }
        }

        if overflow {
            self.note("overflow");
            return FaultAction::Drop;
        }

        // The canonical content: what the replica logically presents. The
        // swallowed-punctuation and reorder transforms change it; a
        // duplicated delivery does not.
        let mut canonical: Vec<Element<Value>> = elements.to_vec();
        let mut mutated = false;
        if self.frozen[i] && canonical.iter().any(Element::is_stable) {
            canonical.retain(|e| !e.is_stable());
            mutated = true;
            self.note("freeze_stable");
        }
        if reorder {
            let reordered = self.reorder(&canonical);
            if reordered != canonical {
                mutated = true;
            }
            canonical = reordered;
            self.note("reorder_batches");
        }

        // Track the delivered prefix for the oracle. A lossy (overflowed)
        // input's stream is knowingly ill-formed — adjusts may name inserts
        // the overflow swallowed — so it is tracked best-effort: whatever
        // applies, applies; the rest is the very data loss being simulated.
        if self.lossy[i] {
            for e in &canonical {
                let _ = self.in_recs[i].apply(e);
            }
        } else if let Err(e) = self.in_recs[i].apply_all(&canonical) {
            self.violations
                .push(format!("input {input} delivered ill-formed stream: {e}"));
        }

        if duplicate {
            self.note("duplicate_batches");
            let mut doubled = canonical.clone();
            doubled.extend(canonical.iter().cloned());
            return FaultAction::Replace(doubled);
        }
        if mutated {
            return FaultAction::Replace(canonical);
        }
        FaultAction::Deliver
    }

    fn on_consumed(
        &mut self,
        _input: u32,
        _at: VTime,
        _delivered: &[Element<Value>],
        emitted: &[Element<Value>],
    ) {
        // The merged output must itself be a well-formed physical stream.
        if let Err(e) = self.out_rec.apply_all(emitted) {
            self.violations
                .push(format!("merge emitted ill-formed output: {e}"));
            return;
        }
        if self.out_rec.stable() > self.last_checked {
            self.last_checked = self.out_rec.stable();
            self.check_now();
        }
    }

    fn control(&mut self, at: VTime, actions: &mut Vec<ControlAction<Value>>) {
        for k in 0..self.faults.len() {
            if self.fired[k] {
                continue;
            }
            match self.faults[k] {
                Fault::Crash { input, at: t } | Fault::CrashRejoin { input, at: t, .. }
                    if at >= t =>
                {
                    self.fired[k] = true;
                    self.ensure(input as usize);
                    self.crashed[input as usize] = true;
                    self.note("crash");
                    actions.push(ControlAction::Detach(StreamId(input)));
                }
                Fault::StallInput {
                    input,
                    at: t,
                    until,
                } if at >= t => {
                    self.fired[k] = true;
                    self.note("stall");
                    actions.push(ControlAction::Stall { input, until });
                }
                Fault::CrashMerge { at: t } if at >= t => {
                    self.fired[k] = true;
                    if let Some(rebuild) = self.rebuild_merge.take() {
                        self.note("crash_merge");
                        actions.push(ControlAction::CrashMerge {
                            rebuild: Box::new(move |img| {
                                // Round-trip the image through the durable
                                // codec before restoring: firing the fault
                                // proves the on-disk encoding is lossless
                                // at an arbitrary mid-run cut.
                                let mut buf = Vec::new();
                                lmerge_durable::put_merge_image(&mut buf, &img);
                                let mut cur = lmerge_durable::Cursor::new(&buf);
                                let decoded = lmerge_durable::get_merge_image::<Value>(&mut cur)
                                    .expect("durable codec decodes its own encoding");
                                assert_eq!(decoded, img, "durable codec must be lossless");
                                rebuild(decoded)
                            }),
                        });
                    }
                }
                _ => {}
            }
        }
        for r in &mut self.rejoins {
            let crash_done = self
                .crashed
                .get(r.crash_input as usize)
                .copied()
                .unwrap_or(false);
            if !r.fired && crash_done && at >= r.rejoin_at {
                r.fired = true;
                actions.push(ControlAction::Attach {
                    // The replacement joins at the output's current stable
                    // point: everything it replays below it is a stale
                    // prefix the merge must absorb idempotently.
                    join_time: self.out_rec.stable(),
                    source: std::mem::take(&mut r.feed),
                });
            }
        }
        if actions
            .iter()
            .any(|a| matches!(a, ControlAction::Attach { .. }))
        {
            self.note("rejoin");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elem(k: i32, vs: i64, ve: i64) -> Element<Value> {
        Element::insert(Value::bare(k), vs, ve)
    }

    #[test]
    fn reorder_preserves_per_key_chains_and_is_seeded() {
        let plan = FaultPlan::clean(7);
        let mut inj = ChaosInjector::new(RLevel::R3, &plan, &[Vec::new()]);
        let batch = vec![
            elem(1, 10, 20),
            Element::adjust(Value::bare(1), Time(10), Time(20), Time(25)),
            elem(2, 11, 21),
            elem(3, 12, 22),
            Element::Stable(Time(5)),
            elem(4, 13, 23),
            elem(5, 14, 24),
        ];
        let a = inj.reorder(&batch);
        // Same multiset of elements, stables in place.
        assert_eq!(a.len(), batch.len());
        assert!(a[4].is_stable(), "punctuation does not move");
        let pos_insert = a.iter().position(|e| *e == batch[0]).unwrap();
        let pos_adjust = a.iter().position(|e| *e == batch[1]).unwrap();
        assert!(pos_insert < pos_adjust, "adjust stays after its insert");
        // Seeded: a fresh injector with the same seed reorders identically.
        let mut inj2 = ChaosInjector::new(RLevel::R3, &plan, &[Vec::new()]);
        assert_eq!(inj2.reorder(&batch), a);
    }

    #[test]
    fn oracle_flags_an_incompatible_output() {
        let plan = FaultPlan::clean(3);
        let mut inj = ChaosInjector::new(RLevel::R3, &plan, &[Vec::new()]);
        // The input freezes ⟨k=1, [10, 20)⟩; the output invents a different
        // event and claims the same stability.
        inj.on_deliver(0, VTime(1), &[elem(1, 10, 20), Element::Stable(Time(50))]);
        inj.on_consumed(
            0,
            VTime(2),
            &[],
            &[elem(9, 10, 20), Element::Stable(Time(50))],
        );
        assert!(
            !inj.violations().is_empty(),
            "fabricated output must be flagged"
        );
    }

    #[test]
    fn conformant_prefix_passes() {
        let plan = FaultPlan::clean(3);
        let mut inj = ChaosInjector::new(RLevel::R3, &plan, &[Vec::new()]);
        let batch = vec![elem(1, 10, 20), Element::Stable(Time(15))];
        inj.on_deliver(0, VTime(1), &batch);
        inj.on_consumed(0, VTime(2), &batch, &batch);
        assert!(inj.violations().is_empty(), "{:?}", inj.violations());
        assert!(inj.checks() >= 1, "stable advance triggered the oracle");
    }
}
