//! The differential conformance harness: one fault plan, every algorithm.
//!
//! [`run_case`] replays the same seeded [`FaultPlan`] against each variant
//! of the LMerge spectrum (R0–R4 plus the naive LMR3− baseline). Each
//! variant merges a level-appropriate set of physically divergent copies
//! of one logical stream; the [`ChaosInjector`] applies the plan and
//! checks the compatibility oracle as the run unfolds. Because input 0 is
//! never faulted, every run completes, and because everything — feed
//! derivation, fault triggers, shuffles, virtual time — derives from the
//! case seed, re-running a case yields a byte-identical trace.

use crate::inject::ChaosInjector;
use crate::plan::{Fault, FaultPlan};
use lmerge_core::{
    new_for_level, LMergeR3, LMergeR3Naive, LMergeR4, LogicalMerge, MergePolicy, RobustnessPolicy,
};
use lmerge_engine::{MergeRun, Operator, Query, RunConfig, TimedElement};
use lmerge_gen::{diverge, generate, DivergenceConfig, GenConfig};
use lmerge_obs::{export, Tracer};
use lmerge_properties::RLevel;
use lmerge_temporal::{Element, Time, VTime, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Buffer data elements into chunks so executor batches carry several
/// elements — which gives the duplicate/reorder faults something to chew
/// on. Punctuation flushes the buffer (a stable may not overtake the data
/// it freezes), as does reaching the chunk size.
pub struct Chunker<P> {
    n: usize,
    buf: Vec<Element<P>>,
}

impl<P> Chunker<P> {
    /// A chunker emitting groups of up to `n` data elements.
    pub fn new(n: usize) -> Chunker<P> {
        Chunker {
            n: n.max(1),
            buf: Vec::new(),
        }
    }
}

impl<P: lmerge_temporal::Payload> Operator<P> for Chunker<P> {
    fn on_element(&mut self, element: &Element<P>, out: &mut Vec<Element<P>>) {
        if element.is_stable() {
            out.append(&mut self.buf);
            out.push(element.clone());
        } else {
            self.buf.push(element.clone());
            if self.buf.len() >= self.n {
                out.append(&mut self.buf);
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        self.buf.capacity() * std::mem::size_of::<Element<P>>()
    }

    fn name(&self) -> &'static str {
        "chunk"
    }
}

/// The algorithm variants the differential harness drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// R0: insert-only, strictly increasing `Vs`.
    R0,
    /// R1: insert-only, non-decreasing, deterministic ties.
    R1,
    /// R2: insert-only, non-decreasing, `(Vs, Payload)` key.
    R2,
    /// R3: the indexed general algorithm.
    R3,
    /// The paper's LMR3− baseline (per-input indexes).
    R3Naive,
    /// R4: the fully general multiset algorithm.
    R4,
}

/// Every variant, in spectrum order.
pub const ALL_VARIANTS: [Variant; 6] = [
    Variant::R0,
    Variant::R1,
    Variant::R2,
    Variant::R3,
    Variant::R3Naive,
    Variant::R4,
];

impl Variant {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::R0 => "r0",
            Variant::R1 => "r1",
            Variant::R2 => "r2",
            Variant::R3 => "r3",
            Variant::R3Naive => "r3_naive",
            Variant::R4 => "r4",
        }
    }

    /// The restriction level governing feeds, fault degradation, and the
    /// oracle flavour. The naive baseline implements the R3 contract.
    pub fn level(&self) -> RLevel {
        match self {
            Variant::R0 => RLevel::R0,
            Variant::R1 => RLevel::R1,
            Variant::R2 => RLevel::R2,
            Variant::R3 | Variant::R3Naive => RLevel::R3,
            Variant::R4 => RLevel::R4,
        }
    }

    /// Construct the merge operator for `n` inputs with the given
    /// robustness policy (applied where the variant supports it).
    pub fn build(&self, n: usize, robustness: RobustnessPolicy) -> Box<dyn LogicalMerge<Value>> {
        match self {
            Variant::R3 => {
                let policy = MergePolicy {
                    robustness,
                    ..MergePolicy::paper_default()
                };
                Box::new(LMergeR3::with_policy(n, policy))
            }
            Variant::R3Naive => Box::new(LMergeR3Naive::new(n)),
            Variant::R4 => Box::new(LMergeR4::with_robustness(n, robustness)),
            v => new_for_level(v.level(), n, MergePolicy::paper_default()),
        }
    }
}

/// One chaos case: a seed and the workload shape it drives.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Master seed: feeds, plan, and shuffles all derive from it.
    pub seed: u64,
    /// Events in the reference stream.
    pub events: usize,
    /// Number of input replicas (input 0 is never faulted).
    pub n_inputs: usize,
    /// Data elements per delivered batch.
    pub chunk: usize,
    /// Robustness policy for the variants that support one.
    pub robustness: RobustnessPolicy,
}

impl ChaosConfig {
    /// A small default case for `seed`: 3 replicas, 120 events, chunked
    /// batches, and the quarantine/entry-bound guards switched on.
    pub fn small(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            events: 120,
            n_inputs: 3,
            chunk: 4,
            robustness: RobustnessPolicy::guarded(600, 1 << 20),
        }
    }

    /// Virtual-time horizon within which fault triggers are drawn.
    pub fn horizon(&self) -> VTime {
        VTime(self.events as u64 * 40)
    }
}

/// What one variant's run produced under the plan.
#[derive(Debug)]
pub struct CaseOutcome {
    /// The variant that ran.
    pub variant: Variant,
    /// Oracle/well-formedness violations (empty on a conformant run).
    pub violations: Vec<String>,
    /// `(fault label, times applied)` for the faults that actually fired.
    pub applied: Vec<(String, u32)>,
    /// Whether the merged output reached `stable(∞)`.
    pub completed: bool,
    /// The output's final stable point.
    pub output_stable: Time,
    /// Whether the output TDB reconstituted to the reference TDB.
    pub tdb_matches: bool,
    /// How many oracle checks ran.
    pub checks: usize,
    /// The run's full JSONL event trace (determinism witness).
    pub trace: String,
}

impl CaseOutcome {
    /// Whether the run was fully conformant.
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.completed && self.tdb_matches
    }
}

/// Assign virtual arrival times: copy `c`'s element `j` arrives at
/// `j·40 + c·13` µs — replicas pace together but stay slightly skewed, so
/// delivery interleaves across inputs like the paper's lag experiments.
pub fn timed(copy: usize, elements: Vec<Element<Value>>) -> Vec<TimedElement<Value>> {
    elements
        .into_iter()
        .enumerate()
        .map(|(j, e)| TimedElement::new(VTime(j as u64 * 40 + copy as u64 * 13), e))
        .collect()
}

/// The general workload (R3/R4/naive): divergent copies — reordered
/// windows, provisional-insert revision paths, thinned punctuation.
pub fn general_feeds(
    cfg: &ChaosConfig,
) -> (lmerge_temporal::Tdb<Value>, Vec<Vec<TimedElement<Value>>>) {
    // Denser punctuation than the unit-test default: every stable advance
    // is an oracle checkpoint, and the laggard faults need announced
    // stables to freeze.
    let r = generate(&GenConfig::small(cfg.events, cfg.seed).with_stable_freq(0.06));
    let dcfg = DivergenceConfig {
        seed: cfg.seed.wrapping_mul(0x9E37_79B9).wrapping_add(1),
        ..DivergenceConfig::default()
    };
    let feeds = (0..cfg.n_inputs)
        .map(|c| timed(c, diverge(&r.elements, &dcfg, c as u64)))
        .collect();
    (r.tdb, feeds)
}

/// The restricted workload (R0–R2): insert-only, strictly increasing `Vs`,
/// identical data order on every copy; copies differ only in which
/// non-final punctuation they keep.
pub fn restricted_feeds(
    cfg: &ChaosConfig,
) -> (lmerge_temporal::Tdb<Value>, Vec<Vec<TimedElement<Value>>>) {
    let gc = GenConfig {
        min_gap_ms: 1,
        disorder: 0.0,
        ..GenConfig::small(cfg.events, cfg.seed).with_stable_freq(0.06)
    };
    let r = generate(&gc);
    let mut feeds = Vec::with_capacity(cfg.n_inputs);
    for c in 0..cfg.n_inputs {
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1000 + c as u64));
        let copy: Vec<Element<Value>> = r
            .elements
            .iter()
            .filter(|e| match e {
                Element::Stable(t) if *t != Time::INFINITY => rng.random_bool(0.7),
                _ => true,
            })
            .cloned()
            .collect();
        feeds.push(timed(c, copy));
    }
    (r.tdb, feeds)
}

/// Replay `plan` against one variant. The feeds and the injector derive
/// entirely from `cfg` and `plan`, so the returned trace is a pure
/// function of them.
pub fn run_variant(variant: Variant, cfg: &ChaosConfig, plan: &FaultPlan) -> CaseOutcome {
    let level = variant.level();
    let (reference_tdb, feeds) = if level >= RLevel::R3 {
        general_feeds(cfg)
    } else {
        restricted_feeds(cfg)
    };

    let mut injector = ChaosInjector::new(level, plan, &feeds);
    if plan
        .faults
        .iter()
        .any(|f| matches!(f, Fault::CrashMerge { .. }))
    {
        let (v, n, robustness) = (variant, cfg.n_inputs, cfg.robustness);
        injector = injector.with_merge_rebuilder(Box::new(move |img| {
            let mut fresh = v.build(n, robustness);
            assert!(
                fresh.restore_state(img),
                "restore into a fresh {} merge",
                v.name()
            );
            fresh
        }));
    }
    let queries: Vec<Query<Value>> = feeds
        .into_iter()
        .map(|f| {
            let chain: Vec<Box<dyn Operator<Value>>> = vec![Box::new(Chunker::new(cfg.chunk))];
            Query::new(f, chain)
        })
        .collect();
    let merge = variant.build(cfg.n_inputs, cfg.robustness);
    let mut tracer = Tracer::new();
    let metrics = MergeRun::new(queries, merge, RunConfig::default())
        .run_with_hooks(&mut tracer, &mut injector);

    // Final oracle pass over the completed prefixes.
    injector.check_now();
    let completed = metrics.output_complete_at.is_some();
    let output_stable = injector.output().stable();
    let tdb_matches = injector.output().tdb() == &reference_tdb;
    CaseOutcome {
        variant,
        violations: injector.violations().to_vec(),
        applied: injector
            .applied()
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect(),
        completed,
        output_stable,
        tdb_matches,
        checks: injector.checks(),
        trace: export::to_jsonl(tracer.events()),
    }
}

/// Replay the case's random plan against every variant of the spectrum.
pub fn run_case(cfg: &ChaosConfig) -> Vec<CaseOutcome> {
    let plan = FaultPlan::random(cfg.seed, cfg.n_inputs, cfg.horizon());
    ALL_VARIANTS
        .iter()
        .map(|v| run_variant(*v, cfg, &plan))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Fault;

    #[test]
    fn chunker_batches_data_and_flushes_on_stable() {
        let mut c: Chunker<&str> = Chunker::new(3);
        let mut out = Vec::new();
        c.on_element(&Element::insert("a", 1, 5), &mut out);
        c.on_element(&Element::insert("b", 2, 6), &mut out);
        assert!(out.is_empty(), "buffered below the chunk size");
        c.on_element(&Element::stable(4), &mut out);
        assert_eq!(out.len(), 3, "stable flushes the buffer first");
        assert!(out[2].is_stable());
    }

    #[test]
    fn clean_plan_runs_are_conformant_for_every_variant() {
        let cfg = ChaosConfig {
            events: 60,
            ..ChaosConfig::small(11)
        };
        let plan = FaultPlan::clean(11);
        for v in ALL_VARIANTS {
            let o = run_variant(v, &cfg, &plan);
            assert!(
                o.ok(),
                "{} clean run failed: violations={:?} completed={} tdb={}",
                v.name(),
                o.violations,
                o.completed,
                o.tdb_matches
            );
            assert!(o.checks > 0, "{} oracle never ran", v.name());
        }
    }

    #[test]
    fn crash_plan_stays_conformant_and_fires() {
        let cfg = ChaosConfig {
            events: 60,
            ..ChaosConfig::small(12)
        };
        let plan = FaultPlan {
            seed: 12,
            faults: vec![Fault::Crash {
                input: 1,
                at: VTime(300),
            }],
        };
        for v in ALL_VARIANTS {
            let o = run_variant(v, &cfg, &plan);
            assert!(o.ok(), "{} crash run failed: {:?}", v.name(), o.violations);
            assert!(
                o.applied.iter().any(|(k, _)| k == "crash"),
                "{} crash never fired",
                v.name()
            );
        }
    }
}
