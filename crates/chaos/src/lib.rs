//! # lmerge-chaos — deterministic fault injection for the LMerge spectrum
//!
//! The paper's central claim is an *availability* claim: because LMerge
//! unifies physically divergent streams behind one logical view, the
//! merged output survives the failure of any proper subset of its inputs.
//! This crate turns that claim into an executable, adversarial test:
//!
//! - [`plan`] — a seeded [`FaultPlan`](plan::FaultPlan) DSL describing
//!   crashes with state loss, restart-and-rejoin from scratch,
//!   duplicated and reordered batch delivery, frozen stable points, and
//!   stall/overflow windows, each triggered at virtual-time boundaries.
//! - [`inject`] — a [`ChaosInjector`](inject::ChaosInjector) implementing
//!   the engine's [`RunHooks`](lmerge_engine::RunHooks), applying the
//!   plan during execution while continuously asserting the
//!   `temporal::compat` oracle against the views actually delivered.
//! - [`harness`] — the differential driver: [`run_case`](harness::run_case)
//!   replays the *same* plan against R0–R4 and the naive baseline, checks
//!   conformance, completion, and TDB equality, and captures the full
//!   `lmerge-obs` trace so a seed's run can be asserted byte-identical.
//!
//! Everything — workloads, fault triggers, shuffles — derives from one
//! `u64` seed, so any failure reproduces from its seed alone.

pub mod harness;
pub mod inject;
pub mod plan;

pub use harness::{
    general_feeds, restricted_feeds, run_case, run_variant, timed, CaseOutcome, ChaosConfig,
    Chunker, Variant, ALL_VARIANTS,
};
pub use inject::ChaosInjector;
pub use plan::{Fault, FaultPlan};
