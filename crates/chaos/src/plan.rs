//! Seeded fault plans: what goes wrong, to whom, and when.
//!
//! A [`FaultPlan`] is a pure value — a seed plus a list of [`Fault`]s with
//! virtual-time triggers — so the same plan replays byte-identically
//! against every algorithm variant. Faults never target input 0: one clean
//! replica always survives, which is exactly the paper's availability
//! argument (Section I) and what guarantees every chaos run completes.

use lmerge_properties::RLevel;
use lmerge_temporal::VTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One injected failure scenario.
///
/// Virtual times are executor delivery times (µs); faults fire at the first
/// virtual-time boundary at or after their trigger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The replica crashes with total state loss: it is detached and every
    /// element it had not yet delivered is gone.
    Crash {
        /// The crashed input (never 0).
        input: u32,
        /// Crash trigger (virtual time).
        at: VTime,
    },
    /// The replica crashes, then a fresh copy rejoins from scratch: the
    /// full feed is re-delivered on a brand-new input attached at the
    /// output's stable point. On R0–R2 this degrades to [`Fault::Crash`]
    /// (re-presenting a stale prefix is only idempotent for the keyed,
    /// revision-capable merges).
    CrashRejoin {
        /// The crashed input (never 0).
        input: u32,
        /// Crash trigger (virtual time).
        at: VTime,
        /// Rejoin trigger (virtual time, after `at`).
        rejoin_at: VTime,
    },
    /// Every batch delivered in `[from, until)` arrives twice — the
    /// at-least-once delivery failure mode. Only meaningful for merges that
    /// deduplicate by content key (R3 and the naive baseline); elsewhere a
    /// duplicated element is a genuinely new occurrence, so the fault
    /// degrades to a no-op.
    DuplicateBatches {
        /// The affected input (never 0).
        input: u32,
        /// Window start (virtual time).
        from: VTime,
        /// Window end (virtual time).
        until: VTime,
    },
    /// Batches delivered in `[from, until)` have their data elements
    /// reordered (preserving per-`(Vs, Payload)`-key order, which keeps
    /// adjust chains intact). Only R3/R4 accept arbitrary order; on R0–R2
    /// the fault degrades to a no-op.
    ReorderBatches {
        /// The affected input (never 0).
        input: u32,
        /// Window start (virtual time).
        from: VTime,
        /// Window end (virtual time).
        until: VTime,
    },
    /// From `from` onward the replica's `stable()` punctuation is silently
    /// swallowed: its stable point freezes while its data keeps flowing —
    /// the laggard scenario the quarantine policy exists for.
    FreezeStable {
        /// The affected input (never 0).
        input: u32,
        /// First virtual time at which punctuation is swallowed.
        from: VTime,
    },
    /// The replica's deliveries freeze in `[at, until)` — a paused VM or a
    /// wedged network, recovering afterwards with its queue intact.
    StallInput {
        /// The stalled input (never 0).
        input: u32,
        /// Stall trigger (virtual time).
        at: VTime,
        /// Deliveries resume at this virtual time.
        until: VTime,
    },
    /// The replica's delivery queue overflows in `[from, until)`: batches
    /// in the window are lost. Because the replica has silently lost data,
    /// its punctuation can no longer be trusted and is swallowed from
    /// `from` onward (a stable over lost events would poison the merge).
    Overflow {
        /// The affected input (never 0).
        input: u32,
        /// Window start (virtual time).
        from: VTime,
        /// Window end (virtual time).
        until: VTime,
    },
    /// The merge operator itself dies mid-run and is rebuilt from a state
    /// image round-tripped through the durable codec — the process-death
    /// scenario the durability layer exists for. Applies at every level
    /// (any variant can crash). Not drawn by [`FaultPlan::random`], so
    /// existing seeded plans replay unchanged; the crash-recovery suites
    /// add it explicitly.
    CrashMerge {
        /// Crash trigger (virtual time).
        at: VTime,
    },
}

impl Fault {
    /// The input this fault targets; `u32::MAX` (the executor's merge
    /// sentinel) for faults that hit the merge operator itself.
    pub fn input(&self) -> u32 {
        match *self {
            Fault::Crash { input, .. }
            | Fault::CrashRejoin { input, .. }
            | Fault::DuplicateBatches { input, .. }
            | Fault::ReorderBatches { input, .. }
            | Fault::FreezeStable { input, .. }
            | Fault::StallInput { input, .. }
            | Fault::Overflow { input, .. } => input,
            Fault::CrashMerge { .. } => u32::MAX,
        }
    }

    /// The fault as applied when merging at `level`: unchanged, weakened,
    /// or `None` when the level's stream restrictions make it meaningless.
    pub fn degrade(&self, level: RLevel) -> Option<Fault> {
        match *self {
            Fault::CrashRejoin { input, at, .. } if level < RLevel::R3 => {
                Some(Fault::Crash { input, at })
            }
            Fault::DuplicateBatches { .. } if level != RLevel::R3 => None,
            Fault::ReorderBatches { .. } if level < RLevel::R3 => None,
            f => Some(f),
        }
    }

    /// A short label for reports and trace narration.
    pub fn label(&self) -> &'static str {
        match self {
            Fault::Crash { .. } => "crash",
            Fault::CrashRejoin { .. } => "crash_rejoin",
            Fault::DuplicateBatches { .. } => "duplicate_batches",
            Fault::ReorderBatches { .. } => "reorder_batches",
            Fault::FreezeStable { .. } => "freeze_stable",
            Fault::StallInput { .. } => "stall",
            Fault::Overflow { .. } => "overflow",
            Fault::CrashMerge { .. } => "crash_merge",
        }
    }
}

/// A seeded, replayable set of faults for one run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The master seed the plan (and the injector's shuffles) derive from.
    pub seed: u64,
    /// The faults, in no particular order; triggers are virtual times.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan with no faults — the control arm of every differential run.
    pub fn clean(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Derive a random plan: 1–3 faults over distinct non-zero inputs,
    /// triggered within `[0, horizon)` virtual µs. Input 0 is never
    /// touched, so the merged output always completes.
    pub fn random(seed: u64, n_inputs: usize, horizon: VTime) -> FaultPlan {
        assert!(n_inputs >= 2, "need a clean input plus at least one victim");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut victims: Vec<u32> = (1..n_inputs as u32).collect();
        // Fisher–Yates prefix: pick distinct victims deterministically.
        for i in 0..victims.len() {
            let j = rng.random_range(i..victims.len());
            victims.swap(i, j);
        }
        let n_faults = rng.random_range(1..=3usize.min(victims.len()));
        let h = horizon.0.max(10);
        let mut faults = Vec::with_capacity(n_faults);
        for &input in victims.iter().take(n_faults) {
            let at = VTime(rng.random_range(0..h * 3 / 4));
            let span = rng.random_range(h / 10..=h / 2);
            let until = VTime((at.0 + span).min(h));
            faults.push(match rng.random_range(0..7u32) {
                0 => Fault::Crash { input, at },
                1 => Fault::CrashRejoin {
                    input,
                    at,
                    rejoin_at: until,
                },
                2 => Fault::DuplicateBatches {
                    input,
                    from: at,
                    until,
                },
                3 => Fault::ReorderBatches {
                    input,
                    from: at,
                    until,
                },
                4 => Fault::FreezeStable { input, from: at },
                5 => Fault::StallInput { input, at, until },
                _ => Fault::Overflow {
                    input,
                    from: at,
                    until,
                },
            });
        }
        FaultPlan { seed, faults }
    }

    /// The plan as applied at `level`: each fault degraded or dropped.
    pub fn effective(&self, level: RLevel) -> Vec<Fault> {
        self.faults
            .iter()
            .filter_map(|f| f.degrade(level))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_deterministic_and_spare_input_zero() {
        let a = FaultPlan::random(99, 4, VTime(10_000));
        let b = FaultPlan::random(99, 4, VTime(10_000));
        assert_eq!(a, b, "same seed, same plan");
        assert!(!a.faults.is_empty() && a.faults.len() <= 3);
        assert!(a.faults.iter().all(|f| f.input() != 0));
        let inputs: Vec<u32> = a.faults.iter().map(Fault::input).collect();
        let mut dedup = inputs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(inputs.len(), dedup.len(), "victims are distinct");
    }

    #[test]
    fn different_seeds_differ() {
        let plans: Vec<FaultPlan> = (0..20)
            .map(|s| FaultPlan::random(s, 4, VTime(10_000)))
            .collect();
        assert!(plans.windows(2).any(|w| w[0].faults != w[1].faults));
    }

    #[test]
    fn degradation_follows_level_restrictions() {
        let cr = Fault::CrashRejoin {
            input: 1,
            at: VTime(5),
            rejoin_at: VTime(50),
        };
        assert_eq!(
            cr.degrade(RLevel::R0),
            Some(Fault::Crash {
                input: 1,
                at: VTime(5)
            })
        );
        assert_eq!(cr.degrade(RLevel::R3), Some(cr));
        assert_eq!(cr.degrade(RLevel::R4), Some(cr));

        let dup = Fault::DuplicateBatches {
            input: 2,
            from: VTime(0),
            until: VTime(10),
        };
        assert_eq!(dup.degrade(RLevel::R3), Some(dup));
        assert_eq!(dup.degrade(RLevel::R4), None, "R4 counts occurrences");
        assert_eq!(dup.degrade(RLevel::R1), None);

        let ro = Fault::ReorderBatches {
            input: 2,
            from: VTime(0),
            until: VTime(10),
        };
        assert_eq!(ro.degrade(RLevel::R2), None, "R2 requires order");
        assert_eq!(ro.degrade(RLevel::R4), Some(ro));

        let fz = Fault::FreezeStable {
            input: 1,
            from: VTime(0),
        };
        let cm = Fault::CrashMerge { at: VTime(100) };
        for level in [RLevel::R0, RLevel::R1, RLevel::R2, RLevel::R3, RLevel::R4] {
            assert_eq!(fz.degrade(level), Some(fz), "freeze applies everywhere");
            assert_eq!(cm.degrade(level), Some(cm), "any variant can crash");
        }
        assert_eq!(cm.input(), u32::MAX);
        assert_eq!(cm.label(), "crash_merge");
    }
}
