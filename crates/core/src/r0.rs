//! Algorithm R0: LMerge for insert-only streams with strictly increasing
//! `Vs` (paper Section IV-A).
//!
//! Only two scalars of state are needed: the maximum `Vs` and the maximum
//! stable timestamp seen across all inputs. An insert is propagated iff it
//! advances `MaxVs`; everything else is a duplicate already emitted via a
//! faster input.

use crate::api::{InputHealth, LogicalMerge};
use crate::inputs::Inputs;
use crate::stats::{InputCounters, MergeStats, PerInput};
use lmerge_properties::RLevel;
use lmerge_temporal::{Element, Payload, StreamId, Time};

/// The R0 merge: `O(1)` state, `O(1)` per element.
#[derive(Debug)]
pub struct LMergeR0<P: Payload> {
    max_vs: Time,
    max_stable: Time,
    inputs: Inputs,
    stats: MergeStats,
    per_input: PerInput,
    _payload: std::marker::PhantomData<fn() -> P>,
}

impl<P: Payload> LMergeR0<P> {
    /// An R0 merge over `n` initially attached inputs.
    pub fn new(n: usize) -> LMergeR0<P> {
        LMergeR0 {
            max_vs: Time::MIN,
            max_stable: Time::MIN,
            inputs: Inputs::new(n),
            stats: MergeStats::default(),
            per_input: PerInput::new(n),
            _payload: std::marker::PhantomData,
        }
    }
}

impl<P: Payload> LogicalMerge<P> for LMergeR0<P> {
    fn push(&mut self, input: StreamId, element: &Element<P>, out: &mut Vec<Element<P>>) {
        self.per_input.on_element(input, element);
        match element {
            Element::Insert(e) => {
                self.stats.inserts_in += 1;
                if !self.inputs.accepts_data(input) {
                    return;
                }
                if e.vs > self.max_vs {
                    self.max_vs = e.vs;
                    self.stats.inserts_out += 1;
                    out.push(Element::Insert(e.clone()));
                } else {
                    self.stats.dropped += 1;
                }
            }
            Element::Adjust { .. } => {
                // The R0 contract excludes revisions; feeding one is a
                // plan-analysis bug, not a data condition.
                panic!("LMergeR0: adjust() elements are not supported in case R0");
            }
            Element::Stable(t) => {
                self.stats.stables_in += 1;
                if !self.inputs.accepts_stable(input) {
                    return;
                }
                if *t > self.max_stable {
                    self.max_stable = *t;
                    self.inputs.on_stable_advance(self.max_stable);
                    self.stats.stables_out += 1;
                    out.push(Element::Stable(*t));
                }
            }
        }
    }

    fn attach(&mut self, join_time: Time) -> StreamId {
        self.per_input.on_attach();
        self.inputs.attach(join_time)
    }

    fn detach(&mut self, input: StreamId) {
        self.inputs.detach(input);
    }

    fn max_stable(&self) -> Time {
        self.max_stable
    }

    fn feedback_point(&self) -> Time {
        // In R0 every element below MaxVs is already settled output.
        self.max_vs.max(self.max_stable)
    }

    fn stats(&self) -> MergeStats {
        self.stats
    }

    fn input_counters(&self) -> &[InputCounters] {
        self.per_input.counters()
    }

    fn input_health(&self, input: StreamId) -> InputHealth {
        self.inputs.state(input).into()
    }

    fn health_transitions(&self) -> crate::inputs::HealthTransitions {
        self.inputs.transitions()
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.inputs.memory_bytes() + self.per_input.memory_bytes()
    }

    fn level(&self) -> RLevel {
        RLevel::R0
    }

    fn export_state(&self) -> Option<crate::state::MergeStateImage<P>> {
        let mut img = crate::state::MergeStateImage::with_common(
            crate::state::VariantKind::R0,
            &self.inputs,
            &self.per_input,
            self.stats,
        );
        img.max_vs = self.max_vs;
        img.max_stable = self.max_stable;
        Some(img)
    }

    fn restore_state(&mut self, image: crate::state::MergeStateImage<P>) -> bool {
        if image.kind != crate::state::VariantKind::R0 {
            return false;
        }
        self.stats = image.apply_common(&mut self.inputs, &mut self.per_input);
        self.max_vs = image.max_vs;
        self.max_stable = image.max_stable;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_all(
        lm: &mut LMergeR0<&'static str>,
        items: &[(u32, Element<&'static str>)],
    ) -> Vec<Element<&'static str>> {
        let mut out = Vec::new();
        for (s, e) in items {
            lm.push(StreamId(*s), e, &mut out);
        }
        out
    }

    #[test]
    fn fastest_input_drives_output() {
        let mut lm = LMergeR0::new(2);
        let out = push_all(
            &mut lm,
            &[
                (0, Element::insert("a", 1, 5)),
                (1, Element::insert("a", 1, 5)), // duplicate, dropped
                (1, Element::insert("b", 2, 6)),
                (0, Element::insert("b", 2, 6)), // duplicate, dropped
                (0, Element::insert("c", 3, 7)),
            ],
        );
        assert_eq!(
            out,
            vec![
                Element::insert("a", 1, 5),
                Element::insert("b", 2, 6),
                Element::insert("c", 3, 7),
            ]
        );
        assert_eq!(lm.stats().dropped, 2);
    }

    #[test]
    fn stable_propagates_only_when_advancing() {
        let mut lm: LMergeR0<&str> = LMergeR0::new(2);
        let out = push_all(
            &mut lm,
            &[
                (0, Element::stable(5)),
                (1, Element::stable(3)), // behind, swallowed
                (1, Element::stable(8)),
            ],
        );
        assert_eq!(out, vec![Element::stable(5), Element::stable(8)]);
        assert_eq!(lm.max_stable(), Time(8));
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn adjust_panics() {
        let mut lm = LMergeR0::new(1);
        let mut out = Vec::new();
        lm.push(StreamId(0), &Element::adjust("a", 1, 5, 9), &mut out);
    }

    #[test]
    fn detached_input_is_ignored() {
        let mut lm = LMergeR0::new(2);
        lm.detach(StreamId(0));
        let out = push_all(&mut lm, &[(0, Element::insert("a", 1, 5))]);
        assert!(out.is_empty());
        let out = push_all(&mut lm, &[(1, Element::insert("a", 1, 5))]);
        assert_eq!(out.len(), 1, "remaining input still drives output");
    }

    #[test]
    fn joining_streams_stable_is_gated() {
        let mut lm: LMergeR0<&str> = LMergeR0::new(1);
        let id = lm.attach(Time(100));
        let mut out = Vec::new();
        lm.push(id, &Element::stable(50), &mut out);
        assert!(out.is_empty(), "joining stream cannot drive progress");
        // The established input advances past the join point.
        lm.push(StreamId(0), &Element::stable(100), &mut out);
        out.clear();
        lm.push(id, &Element::stable(150), &mut out);
        assert_eq!(out, vec![Element::stable(150)], "joined stream trusted");
    }

    #[test]
    fn feedback_tracks_high_water_vs() {
        let mut lm = LMergeR0::new(1);
        let mut out = Vec::new();
        lm.push(StreamId(0), &Element::insert("a", 9, 12), &mut out);
        assert_eq!(lm.feedback_point(), Time(9));
    }

    #[test]
    fn memory_is_constant() {
        let mut lm = LMergeR0::new(2);
        let before = lm.memory_bytes();
        let mut out = Vec::new();
        for i in 0..1000 {
            lm.push(StreamId(0), &Element::insert("x", i, i + 1), &mut out);
        }
        assert_eq!(lm.memory_bytes(), before);
    }
}
