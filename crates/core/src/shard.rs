//! Hash-partitioned (sharded) LMerge: key-parallel merge state.
//!
//! Every index entry of the R2–R4 variants is keyed by `(Vs, Payload)`, and
//! the counter variants R0/R1 resolve each logical element independently of
//! every element with a different `(Vs, Payload)` key — two elements with
//! different keys never interact inside any variant. [`ShardedLMerge`]
//! exploits that independence: it routes each data element to one of `K`
//! inner merge states by a deterministic hash of its key, broadcasts
//! `stable` punctuation (and attach/detach control) to every shard, and
//! re-aggregates the output stable point as the **minimum over shard stable
//! points** (a low watermark: a time is settled for the union only once
//! every partition has settled it).
//!
//! The wrapper is itself a [`LogicalMerge`]: single-threaded callers get a
//! drop-in operator whose output is equivalent to the sequential one after
//! canonical reordering within stable epochs (asserted by
//! `tests/shard_equivalence.rs`). The engine's pipelined executor
//! (`lmerge-engine::pipeline`) runs the same partitioning across worker
//! threads fed by bounded SPSC queues; [`queue_bytes`] models that
//! pipeline's queue memory so `memory_bytes` stays honest for the paper's
//! memory figures whether the shards run inline or threaded.
//!
//! One caveat is inherited rather than hidden: robustness policies
//! (`max_live_entries`, `quarantine_lag`) fire on *shard-local* state, so a
//! bound of `B` entries behaves like a per-partition bound of `B`, not a
//! global one. DESIGN.md §11 discusses when that matters.

use crate::api::{InputHealth, LogicalMerge};
use crate::inputs::Inputs;
use crate::policy::MergePolicy;
use crate::select::new_for_level;
use crate::stats::{InputCounters, MergeStats, PerInput};
use lmerge_properties::RLevel;
use lmerge_temporal::{Element, Payload, StreamId, Time};
use std::hash::{Hash, Hasher};

/// How a sharded operator is laid out: the shard count and the capacity of
/// the per-shard delivery queue a pipelined executor would allocate.
///
/// The queue capacity matters even for inline (single-threaded) execution
/// because [`ShardedLMerge::memory_bytes`] charges the queues either way:
/// the memory curves of Figures 2/6/7 must not silently improve when the
/// same operator is run sharded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of inner merge states (`K`). Clamped to at least 1.
    pub shards: usize,
    /// Slots per shard delivery queue (elements in flight per worker).
    pub queue_capacity: usize,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            shards: 1,
            queue_capacity: 256,
        }
    }
}

impl ShardConfig {
    /// A config with `shards` partitions and the default queue capacity.
    pub fn with_shards(shards: usize) -> ShardConfig {
        ShardConfig {
            shards,
            ..ShardConfig::default()
        }
    }
}

/// Estimated bytes of the delivery queues a pipelined executor allocates
/// for a sharded operator: `shards` SPSC rings of `capacity` slots (one
/// element each) plus two cache-line-padded cursor words per ring. This is
/// the model `ShardedLMerge::memory_bytes` charges; the engine's
/// `pipeline` module allocates rings of exactly this shape.
pub fn queue_bytes<P: Payload>(shards: usize, capacity: usize) -> usize {
    const CURSOR_BYTES: usize = 128; // head + tail, each padded to a cache line
    shards * (capacity * std::mem::size_of::<Element<P>>() + CURSOR_BYTES)
}

/// Deterministic, cheap element-key hash used for shard routing.
///
/// Routing must be a pure function of the key — identical across runs,
/// processes, and the inline/threaded execution paths — so `RandomState`
/// is out. SipHash with fixed keys (`det::DetBuildHasher`) would do, but
/// the router sits on the hot path in front of *every* shard, so we use
/// the workspace's shared FNV-1a ([`crate::hash`], also the lmerge-net
/// wire-frame checksum): ~1 multiply per byte, and the `(Vs, Payload)`
/// keys it feeds on are short (an `i64` plus a small payload key).
pub fn shard_of<P: Hash>(vs: Time, payload: &P, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut h = crate::hash::Fnv1a::new();
    vs.0.hash(&mut h);
    payload.hash(&mut h);
    (h.finish() % shards as u64) as usize
}

/// A `LogicalMerge` that hash-partitions its state across `K` inner merges.
///
/// Data elements route by `(Vs, Payload)` key; punctuation and lifecycle
/// control broadcast to every shard so the shard registries stay in
/// lockstep. Inner stable outputs are stripped and replaced by the
/// aggregated low watermark, emitted at most once per advance.
pub struct ShardedLMerge<P: Payload> {
    shards: Vec<Box<dyn LogicalMerge<P>>>,
    queue_capacity: usize,
    /// Router-side stats: inputs counted once (not once per shard), outputs
    /// counted as forwarded, `dropped` summed from the shards on demand.
    stats: MergeStats,
    per_input: PerInput,
    inputs: Inputs,
    /// The emitted output stable point: `min` over shard stable points.
    watermark: Time,
    /// Reusable buffer for harvesting shard outputs.
    scratch: Vec<Element<P>>,
    /// Reusable per-shard partition buffers for `push_batch`.
    route_bufs: Vec<Vec<Element<P>>>,
}

impl<P: Payload> ShardedLMerge<P> {
    /// Build a sharded operator whose inner states come from `factory`
    /// (called once per shard; each inner merge must be configured for the
    /// same `n_inputs`).
    pub fn from_factory(
        config: ShardConfig,
        n_inputs: usize,
        mut factory: impl FnMut() -> Box<dyn LogicalMerge<P>>,
    ) -> ShardedLMerge<P> {
        let k = config.shards.max(1);
        let shards: Vec<_> = (0..k).map(|_| factory()).collect();
        let watermark = shards.iter().map(|s| s.max_stable()).min().unwrap();
        ShardedLMerge {
            shards,
            queue_capacity: config.queue_capacity,
            stats: MergeStats::default(),
            per_input: PerInput::new(n_inputs),
            inputs: Inputs::new(n_inputs),
            watermark,
            scratch: Vec::new(),
            route_bufs: (0..k).map(|_| Vec::new()).collect(),
        }
    }

    /// Build a sharded operator around the standard variant for `level`
    /// (the sharded analogue of [`new_for_level`]).
    pub fn for_level(
        config: ShardConfig,
        level: RLevel,
        n_inputs: usize,
        policy: MergePolicy,
    ) -> ShardedLMerge<P> {
        ShardedLMerge::from_factory(config, n_inputs, || new_for_level(level, n_inputs, policy))
    }

    /// Number of shards (`K`).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The stable point of shard `k` (the aggregate output stable point is
    /// the minimum of these — the straggler shard holds the output back).
    pub fn shard_stable(&self, k: usize) -> Time {
        self.shards[k].max_stable()
    }

    /// The shard a data element with this key routes to.
    pub fn route(&self, vs: Time, payload: &P) -> usize {
        shard_of(vs, payload, self.shards.len())
    }

    /// Forward harvested shard outputs: data passes through (counted),
    /// shard-local stables are dropped — the aggregate watermark replaces
    /// them in [`Self::advance_watermark`].
    fn flush_scratch(&mut self, out: &mut Vec<Element<P>>) {
        let mut scratch = std::mem::take(&mut self.scratch);
        for e in scratch.drain(..) {
            match &e {
                Element::Insert(_) => self.stats.inserts_out += 1,
                Element::Adjust { .. } => self.stats.adjusts_out += 1,
                Element::Stable(_) => continue,
            }
            out.push(e);
        }
        self.scratch = scratch;
    }

    /// Emit the aggregated stable point if the minimum over shards moved.
    fn advance_watermark(&mut self, out: &mut Vec<Element<P>>) {
        let agg = self
            .shards
            .iter()
            .map(|s| s.max_stable())
            .min()
            .expect("at least one shard");
        if agg > self.watermark {
            self.watermark = agg;
            self.inputs.on_stable_advance(agg);
            self.stats.stables_out += 1;
            out.push(Element::stable(agg));
        }
    }

    fn count_in(&mut self, element: &Element<P>) {
        match element {
            Element::Insert(_) => self.stats.inserts_in += 1,
            Element::Adjust { .. } => self.stats.adjusts_in += 1,
            Element::Stable(_) => self.stats.stables_in += 1,
        }
    }
}

impl<P: Payload> LogicalMerge<P> for ShardedLMerge<P> {
    fn push(&mut self, input: StreamId, element: &Element<P>, out: &mut Vec<Element<P>>) {
        self.per_input.on_element(input, element);
        self.count_in(element);
        debug_assert!(self.scratch.is_empty());
        match element.key() {
            Some((vs, payload)) => {
                let s = shard_of(vs, payload, self.shards.len());
                let mut scratch = std::mem::take(&mut self.scratch);
                self.shards[s].push(input, element, &mut scratch);
                self.scratch = scratch;
            }
            None => {
                // Punctuation broadcasts: every shard must settle `t` before
                // the aggregate may.
                let mut scratch = std::mem::take(&mut self.scratch);
                for shard in &mut self.shards {
                    shard.push(input, element, &mut scratch);
                }
                self.scratch = scratch;
            }
        }
        self.flush_scratch(out);
        self.advance_watermark(out);
    }

    fn push_batch(&mut self, input: StreamId, elements: &[Element<P>], out: &mut Vec<Element<P>>) {
        if self.shards.len() == 1 {
            for e in elements {
                self.per_input.on_element(input, e);
                self.count_in(e);
            }
            let mut scratch = std::mem::take(&mut self.scratch);
            self.shards[0].push_batch(input, elements, &mut scratch);
            self.scratch = scratch;
            self.flush_scratch(out);
            self.advance_watermark(out);
            return;
        }
        // Punctuation-bearing batches go element-by-element (as the inner
        // variants themselves do): each stable is an epoch boundary, and the
        // aggregate watermark must be re-evaluated at every one of them so
        // no intermediate output stable is collapsed away.
        if elements.iter().any(|e| e.is_stable()) {
            for e in elements {
                self.push(input, e, out);
            }
            return;
        }
        // Data-only batch: partition into per-shard subsequences. Relative
        // order is preserved within each shard, so each shard sees exactly
        // the restriction of the batch to its keys — and keeps its O(1)
        // frozen-batch discard for the subsequence.
        let mut bufs = std::mem::take(&mut self.route_bufs);
        for e in elements {
            self.per_input.on_element(input, e);
            self.count_in(e);
            if let Some((vs, payload)) = e.key() {
                bufs[shard_of(vs, payload, self.shards.len())].push(e.clone());
            }
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        for (s, buf) in bufs.iter_mut().enumerate() {
            if buf.is_empty() {
                continue;
            }
            self.shards[s].push_batch(input, buf, &mut scratch);
            buf.clear();
        }
        self.scratch = scratch;
        self.route_bufs = bufs;
        self.flush_scratch(out);
        self.advance_watermark(out);
    }

    fn attach(&mut self, join_time: Time) -> StreamId {
        let id = self.inputs.attach(join_time);
        self.per_input.on_attach();
        for shard in &mut self.shards {
            let sid = shard.attach(join_time);
            debug_assert_eq!(sid, id, "shard input registries must stay in lockstep");
        }
        id
    }

    fn detach(&mut self, input: StreamId) {
        self.inputs.detach(input);
        for shard in &mut self.shards {
            shard.detach(input);
        }
    }

    fn max_stable(&self) -> Time {
        self.watermark
    }

    fn feedback_point(&self) -> Time {
        // Conservative aggregate: a producer may only skip what *every*
        // shard has declared irrelevant.
        self.shards
            .iter()
            .map(|s| s.feedback_point())
            .min()
            .expect("at least one shard")
    }

    fn stats(&self) -> MergeStats {
        let mut s = self.stats;
        // Each data element lives in exactly one shard, so shard-local drop
        // counts sum to the router-level total.
        s.dropped = self.shards.iter().map(|sh| sh.stats().dropped).sum();
        s
    }

    fn input_counters(&self) -> &[InputCounters] {
        self.per_input.counters()
    }

    fn input_health(&self, input: StreamId) -> InputHealth {
        // Router-level lifecycle. Shard-local robustness demotions
        // (quarantine, entry-bound detach) are intentionally not aggregated
        // here — see the module docs and DESIGN.md §11.
        self.inputs.state(input).into()
    }

    fn health_transitions(&self) -> crate::inputs::HealthTransitions {
        // Router-level transitions plus every shard's policy-driven ones:
        // the counters are additive, so the sum tells the operator how much
        // robustness-policy activity the whole sharded operator saw.
        let mut t = self.inputs.transitions();
        for s in &self.shards {
            let st = s.health_transitions();
            t.quarantines += st.quarantines;
            t.restores += st.restores;
            t.departures += st.departures;
        }
        t
    }

    fn memory_bytes(&self) -> usize {
        let elem = std::mem::size_of::<Element<P>>();
        std::mem::size_of::<Self>()
            + self.shards.iter().map(|s| s.memory_bytes()).sum::<usize>()
            + self.inputs.memory_bytes()
            + self.per_input.memory_bytes()
            + self.scratch.capacity() * elem
            + self
                .route_bufs
                .iter()
                .map(|b| b.capacity() * elem)
                .sum::<usize>()
            + queue_bytes::<P>(self.shards.len(), self.queue_capacity)
    }

    fn level(&self) -> RLevel {
        self.shards[0].level()
    }

    fn export_state(&self) -> Option<crate::state::MergeStateImage<P>> {
        let mut img = crate::state::MergeStateImage::with_common(
            crate::state::VariantKind::Sharded,
            &self.inputs,
            &self.per_input,
            self.stats,
        );
        img.watermark = self.watermark;
        let mut shards = Vec::with_capacity(self.shards.len());
        for s in &self.shards {
            // All-or-nothing: a wrapper around an unexportable inner
            // operator is itself unexportable.
            shards.push(s.export_state()?);
        }
        img.shards = shards;
        Some(img)
    }

    fn restore_state(&mut self, image: crate::state::MergeStateImage<P>) -> bool {
        if image.kind != crate::state::VariantKind::Sharded
            || image.shards.len() != self.shards.len()
        {
            return false;
        }
        for (shard, shard_img) in self.shards.iter_mut().zip(image.shards.iter()) {
            if !shard.restore_state(shard_img.clone()) {
                return false;
            }
        }
        self.stats = image.apply_common(&mut self.inputs, &mut self.per_input);
        self.watermark = image.watermark;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sharded(k: usize, level: RLevel, n: usize) -> ShardedLMerge<&'static str> {
        ShardedLMerge::for_level(
            ShardConfig::with_shards(k),
            level,
            n,
            MergePolicy::paper_default(),
        )
    }

    #[test]
    fn routing_is_deterministic_and_key_pure() {
        let lm = sharded(4, RLevel::R3, 2);
        for (vs, p) in [(1, "a"), (2, "a"), (1, "b"), (9, "zz")] {
            let s = lm.route(Time(vs), &p);
            assert_eq!(s, lm.route(Time(vs), &p), "same key, same shard");
            assert_eq!(s, shard_of(Time(vs), &p, 4), "pure function of key");
            assert!(s < 4);
        }
        // Insert and adjust with the same key must land on the same shard,
        // or revisions would miss their provisional entry.
        let ins = Element::insert("a", 3, 10);
        let adj = Element::adjust("a", 3, 10, 12);
        let (vs, p) = ins.key().unwrap();
        let (avs, ap) = adj.key().unwrap();
        assert_eq!(shard_of(vs, p, 4), shard_of(avs, ap, 4));
    }

    #[test]
    fn stable_broadcast_emits_one_aggregate_stable() {
        let mut lm = sharded(4, RLevel::R3, 1);
        let mut out = Vec::new();
        lm.push(StreamId(0), &Element::insert("a", 1, 5), &mut out);
        lm.push(StreamId(0), &Element::insert("b", 2, 5), &mut out);
        lm.push(StreamId(0), &Element::stable(10), &mut out);
        let stables: Vec<_> = out.iter().filter(|e| e.is_stable()).collect();
        assert_eq!(stables.len(), 1, "shard stables collapse to one: {out:?}");
        assert_eq!(lm.max_stable(), Time(10));
        assert_eq!(lm.stats().stables_out, 1);
    }

    #[test]
    fn watermark_is_min_over_shards() {
        // With 2 inputs at R3, one input's stable alone does not advance the
        // output; the sharded wrapper must agree with the sequential rule.
        let mut seq = new_for_level::<&str>(RLevel::R3, 2, MergePolicy::paper_default());
        let mut lm = sharded(4, RLevel::R3, 2);
        let mut so = Vec::new();
        let mut ko = Vec::new();
        for (input, e) in [
            (0u32, Element::insert("a", 1, 5)),
            (1u32, Element::insert("a", 1, 5)),
            (0, Element::stable(8)),
            (1, Element::stable(6)),
        ] {
            seq.push(StreamId(input), &e, &mut so);
            lm.push(StreamId(input), &e, &mut ko);
        }
        assert_eq!(lm.max_stable(), seq.max_stable());
        assert_eq!(lm.feedback_point(), seq.feedback_point());
    }

    #[test]
    fn matches_sequential_r3_on_a_small_feed() {
        let mut seq = new_for_level::<&str>(RLevel::R3, 2, MergePolicy::paper_default());
        let mut lm = sharded(4, RLevel::R3, 2);
        let feed = [
            (0u32, Element::insert("a", 1, Time::INFINITY)),
            (0, Element::adjust("a", 1, Time::INFINITY, Time(7))),
            (1, Element::insert("a", 1, 7)),
            (0, Element::insert("b", 2, 9)),
            (1, Element::insert("b", 2, 9)),
            (0, Element::stable(20)),
            (1, Element::stable(20)),
        ];
        let mut so = Vec::new();
        let mut ko = Vec::new();
        for (input, e) in &feed {
            seq.push(StreamId(*input), e, &mut so);
            lm.push(StreamId(*input), e, &mut ko);
        }
        // Same elements modulo order within the (single) stable epoch.
        let fp = |v: &[Element<&str>]| {
            let mut d: Vec<String> = v.iter().map(|e| format!("{e:?}")).collect();
            d.sort();
            d
        };
        assert_eq!(fp(&so), fp(&ko));
        assert_eq!(seq.max_stable(), lm.max_stable());
        let (ss, ks) = (seq.stats(), lm.stats());
        assert_eq!(ss.elements_in(), ks.elements_in());
        assert_eq!(
            ss.inserts_out + ss.adjusts_out,
            ks.inserts_out + ks.adjusts_out
        );
        assert_eq!(ss.stables_out, ks.stables_out);
    }

    #[test]
    fn push_batch_partitions_like_per_element_push() {
        let feed: Vec<Element<&str>> = vec![
            Element::insert("a", 1, 5),
            Element::insert("b", 2, 6),
            Element::stable(3),
            Element::insert("c", 4, 9),
            Element::stable(5),
        ];
        let mut one = sharded(4, RLevel::R4, 1);
        let mut per = Vec::new();
        for e in &feed {
            one.push(StreamId(0), e, &mut per);
        }
        let mut two = sharded(4, RLevel::R4, 1);
        let mut bat = Vec::new();
        two.push_batch(StreamId(0), &feed, &mut bat);
        let fp = |v: &[Element<&str>]| {
            let mut d: Vec<String> = v.iter().map(|e| format!("{e:?}")).collect();
            d.sort();
            d
        };
        assert_eq!(fp(&per), fp(&bat));
        assert_eq!(one.max_stable(), two.max_stable());
        assert_eq!(one.stats(), two.stats());
    }

    #[test]
    fn attach_detach_broadcast_keeps_registries_in_lockstep() {
        let mut lm = sharded(3, RLevel::R3, 2);
        let id = lm.attach(Time(5));
        assert_eq!(id, StreamId(2));
        assert_eq!(lm.input_health(id), InputHealth::Joining);
        let mut out = Vec::new();
        lm.push(StreamId(0), &Element::stable(9), &mut out);
        lm.push(StreamId(1), &Element::stable(9), &mut out);
        assert_eq!(lm.max_stable(), Time(9), "joiner's punctuation still gated");
        assert_eq!(
            lm.input_health(id),
            InputHealth::Active,
            "join time covered"
        );
        lm.detach(StreamId(1));
        assert_eq!(lm.input_health(StreamId(1)), InputHealth::Left);
        // A detached input's elements are ignored by every shard.
        let before = lm.stats().dropped;
        lm.push(StreamId(1), &Element::insert("x", 10, 20), &mut out);
        assert!(lm.stats().dropped >= before);
        assert_eq!(lm.stats().inserts_out, 0);
    }

    #[test]
    fn memory_accounts_shards_queues_and_router() {
        // Pinned alongside `mem::hash_table_bytes`: the sharded wrapper must
        // charge K inner states plus the delivery queues plus its own
        // router-side state — never less than the sequential operator.
        let k = 4;
        let cap = 64;
        let cfg = ShardConfig {
            shards: k,
            queue_capacity: cap,
        };
        let lm: ShardedLMerge<&'static str> =
            ShardedLMerge::for_level(cfg, RLevel::R3, 2, MergePolicy::paper_default());
        let single = new_for_level::<&'static str>(RLevel::R3, 2, MergePolicy::paper_default());
        let queues = queue_bytes::<&'static str>(k, cap);
        let elem = std::mem::size_of::<Element<&'static str>>();
        assert_eq!(queues, k * (cap * elem + 128), "queue model is pinned");
        let expected = std::mem::size_of::<ShardedLMerge<&'static str>>()
            + k * single.memory_bytes()
            + Inputs::new(2).memory_bytes()
            + PerInput::new(2).memory_bytes()
            + queues;
        assert_eq!(lm.memory_bytes(), expected);
        assert!(lm.memory_bytes() > single.memory_bytes() + queues);
    }

    #[test]
    fn single_shard_degenerates_to_the_inner_operator() {
        let mut seq = new_for_level::<&str>(RLevel::R2, 2, MergePolicy::paper_default());
        let mut lm = sharded(1, RLevel::R2, 2);
        let feed = [
            (0u32, Element::insert("a", 1, 5)),
            (1u32, Element::insert("a", 1, 5)),
            (0, Element::insert("b", 1, 6)),
            (1, Element::insert("b", 1, 6)),
            (0, Element::stable(4)),
            (1, Element::stable(4)),
        ];
        let mut so = Vec::new();
        let mut ko = Vec::new();
        for (input, e) in &feed {
            seq.push(StreamId(*input), e, &mut so);
            lm.push(StreamId(*input), e, &mut ko);
        }
        assert_eq!(
            format!("{so:?}"),
            format!("{ko:?}"),
            "K=1 output is byte-identical, not just canonically equal"
        );
    }
}
