//! `LMR3−`: the naive R3 baseline of the paper's evaluation (Section VI-A).
//!
//! "Events from each input stream are maintained in a separate index, with
//! another index used to hold output events. … While this algorithm is
//! simpler to implement, it duplicates event information across input
//! streams and requires multiple tree lookups at runtime."
//!
//! It produces the same output as [`crate::LMergeR3`] under the default
//! policy, but its memory grows linearly with the number of inputs (each
//! input's index stores its own copy of every live payload) — the contrast
//! Figures 2 and 7 measure.

use crate::api::{InputHealth, LogicalMerge};
use crate::in2t::SweepAction;
use crate::inputs::Inputs;
use crate::stats::{InputCounters, MergeStats, PerInput};
use lmerge_properties::RLevel;
use lmerge_temporal::{Element, Payload, StreamId, Time};
use std::collections::BTreeMap;

/// One per-stream event index: `Vs → (Payload → Ve)`, payloads owned.
///
/// The inner tier is an ordered map (not a hash map) for the same reason as
/// `in2t`: reconciliation sweeps iterate it and their emission order is
/// consumer-visible, so iteration must be a pure function of contents for a
/// checkpoint-restored index to replay byte-identically.
#[derive(Debug, Default)]
struct EventIndex<P: Payload> {
    map: BTreeMap<Time, BTreeMap<P, Time>>,
    payload_bytes: usize,
    entries: usize,
}

impl<P: Payload> EventIndex<P> {
    fn new() -> Self {
        EventIndex {
            map: BTreeMap::new(),
            payload_bytes: 0,
            entries: 0,
        }
    }

    fn get(&self, vs: Time, p: &P) -> Option<Time> {
        self.map.get(&vs).and_then(|m| m.get(p)).copied()
    }

    fn set(&mut self, vs: Time, p: &P, ve: Time) {
        let m = self.map.entry(vs).or_default();
        if m.insert(p.clone(), ve).is_none() {
            // Each index stores its own payload copy — the duplication that
            // makes LMR3− degrade linearly with the number of inputs.
            self.payload_bytes += p.heap_bytes();
            self.entries += 1;
        }
    }

    /// Visit every entry with `Vs < t` once, in `Vs` order, unlinking the
    /// ones the visitor retires — the allocation-free replacement for
    /// cloning the half-frozen prefix out and re-removing key by key.
    fn sweep_before<F>(&mut self, t: Time, mut visit: F)
    where
        F: FnMut(Time, &P, Time) -> SweepAction,
    {
        let EventIndex {
            map,
            payload_bytes,
            entries,
        } = self;
        let mut emptied = false;
        for (vs, m) in map.range_mut(..t) {
            m.retain(|p, ve| match visit(*vs, p, *ve) {
                SweepAction::Keep => true,
                SweepAction::Retire => {
                    *payload_bytes -= p.heap_bytes();
                    *entries -= 1;
                    false
                }
            });
            emptied |= m.is_empty();
        }
        if emptied {
            map.retain(|_, m| !m.is_empty());
        }
    }

    /// Purge entries fully frozen by `t` (both `vs` and recorded `ve` < `t`).
    fn purge_frozen(&mut self, t: Time) {
        self.sweep_before(t, |_, _, ve| {
            if ve < t {
                SweepAction::Retire
            } else {
                SweepAction::Keep
            }
        });
    }

    fn memory_bytes(&self) -> usize {
        const TIER_OVERHEAD: usize = 48;
        const ENTRY_OVERHEAD: usize = 32;
        self.map.len() * TIER_OVERHEAD
            + self.entries * (std::mem::size_of::<(P, Time)>() + ENTRY_OVERHEAD)
            + self.payload_bytes
    }

    /// Export every `(Vs, payload, Ve)` entry in canonical order. The `Ve`
    /// travels in the image entry's `output` field as a `(ve, 1)` bucket.
    fn export(&self) -> Vec<crate::state::StateEntry<P>> {
        self.map
            .iter()
            .flat_map(|(vs, m)| {
                m.iter().map(|(p, ve)| crate::state::StateEntry {
                    vs: *vs,
                    payload: p.clone(),
                    per_input: Vec::new(),
                    output: vec![(*ve, 1)],
                })
            })
            .collect()
    }

    /// Rebuild an index from exported entries.
    fn restore(entries: &[crate::state::StateEntry<P>]) -> EventIndex<P> {
        let mut ix = EventIndex::new();
        for e in entries {
            if let Some(&(ve, _)) = e.output.first() {
                ix.set(e.vs, &e.payload, ve);
            }
        }
        ix
    }
}

/// The naive R3 merge with per-input event indexes (`LMR3−`).
#[derive(Debug)]
pub struct LMergeR3Naive<P: Payload> {
    per_input: Vec<EventIndex<P>>,
    output: EventIndex<P>,
    max_stable: Time,
    inputs: Inputs,
    stats: MergeStats,
    input_tallies: PerInput,
}

impl<P: Payload> LMergeR3Naive<P> {
    /// A naive R3 merge over `n` initially attached inputs.
    pub fn new(n: usize) -> LMergeR3Naive<P> {
        LMergeR3Naive {
            per_input: (0..n).map(|_| EventIndex::new()).collect(),
            output: EventIndex::new(),
            max_stable: Time::MIN,
            inputs: Inputs::new(n),
            stats: MergeStats::default(),
            input_tallies: PerInput::new(n),
        }
    }

    fn index_for(&mut self, s: StreamId) -> &mut EventIndex<P> {
        let i = s.0 as usize;
        if i >= self.per_input.len() {
            self.per_input.resize_with(i + 1, EventIndex::new);
        }
        &mut self.per_input[i]
    }
}

impl<P: Payload> LogicalMerge<P> for LMergeR3Naive<P> {
    fn push(&mut self, input: StreamId, element: &Element<P>, out: &mut Vec<Element<P>>) {
        self.input_tallies.on_element(input, element);
        match element {
            Element::Insert(e) => {
                self.stats.inserts_in += 1;
                if !self.inputs.accepts_data(input) {
                    return;
                }
                // Tree lookup #1: is the event already settled (fully
                // frozen and purged)? Half-frozen events must still be
                // recorded — the input's view of their end time matters.
                let known = self.output.get(e.vs, &e.payload).is_some();
                if e.vs < self.max_stable && !known {
                    self.stats.dropped += 1;
                    return;
                }
                // Tree lookup #2: record in the input's own index (a full
                // payload copy — LMR3−'s defining memory cost).
                self.index_for(input).set(e.vs, &e.payload, e.ve);
                if !known {
                    self.output.set(e.vs, &e.payload, e.ve);
                    self.stats.inserts_out += 1;
                    out.push(Element::Insert(e.clone()));
                } else {
                    self.stats.dropped += 1;
                }
            }
            Element::Adjust {
                payload, vs, ve, ..
            } => {
                self.stats.adjusts_in += 1;
                if !self.inputs.accepts_data(input) {
                    return;
                }
                if *vs < self.max_stable && self.output.get(*vs, payload).is_none() {
                    self.stats.dropped += 1;
                    return;
                }
                self.index_for(input).set(*vs, payload, *ve);
            }
            Element::Stable(t) => {
                self.stats.stables_in += 1;
                if !self.inputs.accepts_stable(input) {
                    return;
                }
                let t = *t;
                if t <= self.max_stable {
                    return;
                }
                // Reconcile the output with the progress-driving input. The
                // input's index is read in place while the output index is
                // mutated — split field borrows, no cloned snapshot.
                self.index_for(input); // ensure the slot exists
                let max_stable = self.max_stable;
                let stats = &mut self.stats;
                let driving = &self.per_input[input.0 as usize];
                for (vs, m) in driving.map.range(..t) {
                    for (p, in_ve) in m {
                        let (vs, in_ve) = (*vs, *in_ve);
                        match self.output.get(vs, p) {
                            Some(o)
                                if o != in_ve && (in_ve < t || o < t) && in_ve >= max_stable =>
                            {
                                self.output.set(vs, p, in_ve);
                                stats.adjusts_out += 1;
                                out.push(Element::adjust(p.clone(), vs, o, in_ve));
                            }
                            // `in_ve == vs` is a deleted event: nothing to
                            // insert (mirrors the R3 legality guard).
                            None if in_ve != vs && vs >= max_stable => {
                                // The driving input has an event the output
                                // never carried (attach/detach churn).
                                self.output.set(vs, p, in_ve);
                                stats.inserts_out += 1;
                                out.push(Element::insert(p.clone(), vs, in_ve));
                            }
                            _ => {}
                        }
                    }
                }
                // One output sweep deletes spurious events (the driving
                // input lacks them) and purges fully frozen ones.
                self.output.sweep_before(t, |vs, p, o| {
                    if driving.get(vs, p).is_none() && vs >= max_stable {
                        stats.adjusts_out += 1;
                        out.push(Element::adjust(p.clone(), vs, o, vs));
                        SweepAction::Retire
                    } else if o < t {
                        SweepAction::Retire
                    } else {
                        SweepAction::Keep
                    }
                });
                // Purge fully frozen entries from every input index.
                for ix in &mut self.per_input {
                    ix.purge_frozen(t);
                }
                self.max_stable = t;
                self.inputs.on_stable_advance(t);
                self.stats.stables_out += 1;
                out.push(Element::Stable(t));
            }
        }
    }

    fn attach(&mut self, join_time: Time) -> StreamId {
        self.input_tallies.on_attach();
        let id = self.inputs.attach(join_time);
        self.per_input
            .resize_with(self.inputs.allocated(), EventIndex::new);
        id
    }

    fn detach(&mut self, input: StreamId) {
        self.inputs.detach(input);
        if let Some(ix) = self.per_input.get_mut(input.0 as usize) {
            *ix = EventIndex::new();
        }
    }

    fn max_stable(&self) -> Time {
        self.max_stable
    }

    fn stats(&self) -> MergeStats {
        self.stats
    }

    fn input_counters(&self) -> &[InputCounters] {
        self.input_tallies.counters()
    }

    fn input_health(&self, input: StreamId) -> InputHealth {
        self.inputs.state(input).into()
    }

    fn health_transitions(&self) -> crate::inputs::HealthTransitions {
        self.inputs.transitions()
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .per_input
                .iter()
                .map(EventIndex::memory_bytes)
                .sum::<usize>()
            + self.output.memory_bytes()
            + self.inputs.memory_bytes()
            + self.input_tallies.memory_bytes()
    }

    fn level(&self) -> RLevel {
        RLevel::R3
    }

    fn export_state(&self) -> Option<crate::state::MergeStateImage<P>> {
        let mut img = crate::state::MergeStateImage::with_common(
            crate::state::VariantKind::R3Naive,
            &self.inputs,
            &self.input_tallies,
            self.stats,
        );
        img.max_stable = self.max_stable;
        img.entries = self.output.export();
        img.input_indexes = self.per_input.iter().map(EventIndex::export).collect();
        Some(img)
    }

    fn restore_state(&mut self, image: crate::state::MergeStateImage<P>) -> bool {
        if image.kind != crate::state::VariantKind::R3Naive {
            return false;
        }
        self.stats = image.apply_common(&mut self.inputs, &mut self.input_tallies);
        self.max_stable = image.max_stable;
        self.output = EventIndex::restore(&image.entries);
        self.per_input = image
            .input_indexes
            .iter()
            .map(|ix| EventIndex::restore(ix))
            .collect();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_temporal::reconstitute::tdb_of;

    type E = Element<&'static str>;

    #[test]
    fn matches_lmr3_on_divergent_ends() {
        let mut lm = LMergeR3Naive::new(2);
        let mut out = Vec::new();
        lm.push(StreamId(0), &E::insert("A", 6, 7), &mut out);
        lm.push(StreamId(1), &E::insert("A", 6, 12), &mut out);
        lm.push(StreamId(1), &E::stable(20), &mut out);
        let tdb = tdb_of(&out).unwrap();
        assert_eq!(tdb.count(&"A", Time(6), Time(12)), 1);
    }

    #[test]
    fn spurious_event_deleted_on_stable() {
        let mut lm = LMergeR3Naive::new(2);
        let mut out = Vec::new();
        lm.push(StreamId(0), &E::insert("X", 5, 9), &mut out);
        lm.push(StreamId(1), &E::stable(10), &mut out);
        assert!(tdb_of(&out).unwrap().is_empty());
    }

    #[test]
    fn memory_grows_with_inputs() {
        use lmerge_temporal::Value;
        // Same workload into 2 vs 8 inputs: LMR3− duplicates payloads.
        let mem_for = |n: usize| {
            let mut lm = LMergeR3Naive::new(n);
            let mut out = Vec::new();
            for s in 0..n as u32 {
                for i in 0..100 {
                    lm.push(
                        StreamId(s),
                        &Element::insert(Value::synthetic(i, 1000), i as i64, 1_000_000),
                        &mut out,
                    );
                }
            }
            lm.memory_bytes()
        };
        let m2 = mem_for(2);
        let m8 = mem_for(8);
        // 2 inputs + output index = 3 payload-holding indexes; 8 inputs + 1
        // = 9: the expected ratio is ~3×.
        assert!(
            m8 as f64 > 2.5 * m2 as f64,
            "expected near-linear growth: {m2} → {m8}"
        );
    }

    #[test]
    fn purges_frozen_state() {
        let mut lm = LMergeR3Naive::new(1);
        let mut out = Vec::new();
        for i in 0..50i64 {
            lm.push(StreamId(0), &E::insert("k", i, i + 1), &mut out);
        }
        let before = lm.memory_bytes();
        lm.push(StreamId(0), &E::stable(100), &mut out);
        assert!(lm.memory_bytes() < before);
    }

    #[test]
    fn lazy_adjust_semantics_match_paper() {
        let mut lm = LMergeR3Naive::new(1);
        let mut out = Vec::new();
        lm.push(StreamId(0), &E::insert("A", 6, 20), &mut out);
        lm.push(StreamId(0), &E::adjust("A", 6, 20, 25), &mut out);
        assert_eq!(out.len(), 1, "adjust absorbed");
        lm.push(StreamId(0), &E::stable(40), &mut out);
        assert_eq!(out[1..], [E::adjust("A", 6, 20, 25), E::stable(40)]);
    }
}
