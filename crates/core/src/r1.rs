//! Algorithm R1: LMerge for insert-only streams with non-decreasing `Vs`
//! and deterministic order among equal timestamps (paper Section IV-B).
//!
//! Because elements with the same `Vs` arrive in the *same* order on every
//! input (e.g. Top-k rank order), it suffices to count how many elements
//! each input has presented at the current `MaxVs`: an insert is new exactly
//! when its input's counter catches up with the global maximum.

use crate::api::{InputHealth, LogicalMerge};
use crate::inputs::Inputs;
use crate::stats::{InputCounters, MergeStats, PerInput};
use lmerge_properties::RLevel;
use lmerge_temporal::{Element, Payload, StreamId, Time};

/// The R1 merge: `O(s)` state (one counter per input).
#[derive(Debug)]
pub struct LMergeR1<P: Payload> {
    max_vs: Time,
    max_stable: Time,
    /// `SameVsCount[s]`: elements with `Vs == MaxVs` seen on input `s`.
    same_vs_count: Vec<u64>,
    inputs: Inputs,
    stats: MergeStats,
    per_input: PerInput,
    _payload: std::marker::PhantomData<fn() -> P>,
}

impl<P: Payload> LMergeR1<P> {
    /// An R1 merge over `n` initially attached inputs.
    pub fn new(n: usize) -> LMergeR1<P> {
        LMergeR1 {
            max_vs: Time::MIN,
            max_stable: Time::MIN,
            same_vs_count: vec![0; n],
            inputs: Inputs::new(n),
            stats: MergeStats::default(),
            per_input: PerInput::new(n),
            _payload: std::marker::PhantomData,
        }
    }

    /// The number of elements already output for the current `MaxVs`
    /// (equals `MAX(SameVsCount)` in the paper's formulation).
    fn emitted_at_max_vs(&self) -> u64 {
        self.same_vs_count.iter().copied().max().unwrap_or(0)
    }
}

impl<P: Payload> LogicalMerge<P> for LMergeR1<P> {
    fn push(&mut self, input: StreamId, element: &Element<P>, out: &mut Vec<Element<P>>) {
        self.per_input.on_element(input, element);
        match element {
            Element::Insert(e) => {
                self.stats.inserts_in += 1;
                if !self.inputs.accepts_data(input) {
                    return;
                }
                if e.vs < self.max_vs {
                    self.stats.dropped += 1;
                    return;
                }
                if e.vs > self.max_vs {
                    self.same_vs_count.iter_mut().for_each(|c| *c = 0);
                    self.max_vs = e.vs;
                }
                let s = input.0 as usize;
                if s >= self.same_vs_count.len() {
                    self.same_vs_count.resize(s + 1, 0);
                }
                if self.emitted_at_max_vs() == self.same_vs_count[s] {
                    self.stats.inserts_out += 1;
                    out.push(Element::Insert(e.clone()));
                } else {
                    self.stats.dropped += 1;
                }
                self.same_vs_count[s] += 1;
            }
            Element::Adjust { .. } => {
                panic!("LMergeR1: adjust() elements are not supported in case R1");
            }
            Element::Stable(t) => {
                self.stats.stables_in += 1;
                if !self.inputs.accepts_stable(input) {
                    return;
                }
                if *t > self.max_stable {
                    self.max_stable = *t;
                    self.inputs.on_stable_advance(self.max_stable);
                    self.stats.stables_out += 1;
                    out.push(Element::Stable(*t));
                }
            }
        }
    }

    fn attach(&mut self, join_time: Time) -> StreamId {
        self.per_input.on_attach();
        let id = self.inputs.attach(join_time);
        // A fresh input has presented nothing at the current MaxVs.
        self.same_vs_count.resize(self.inputs.allocated(), 0);
        id
    }

    fn detach(&mut self, input: StreamId) {
        self.inputs.detach(input);
        // Keep the detached counter: it records how many elements at MaxVs
        // were already emitted on its behalf, which still suppresses
        // duplicates from slower inputs.
    }

    fn max_stable(&self) -> Time {
        self.max_stable
    }

    fn feedback_point(&self) -> Time {
        self.max_vs.max(self.max_stable)
    }

    fn stats(&self) -> MergeStats {
        self.stats
    }

    fn input_counters(&self) -> &[InputCounters] {
        self.per_input.counters()
    }

    fn input_health(&self, input: StreamId) -> InputHealth {
        self.inputs.state(input).into()
    }

    fn health_transitions(&self) -> crate::inputs::HealthTransitions {
        self.inputs.transitions()
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.same_vs_count.capacity() * std::mem::size_of::<u64>()
            + self.inputs.memory_bytes()
            + self.per_input.memory_bytes()
    }

    fn level(&self) -> RLevel {
        RLevel::R1
    }

    fn export_state(&self) -> Option<crate::state::MergeStateImage<P>> {
        let mut img = crate::state::MergeStateImage::with_common(
            crate::state::VariantKind::R1,
            &self.inputs,
            &self.per_input,
            self.stats,
        );
        img.max_vs = self.max_vs;
        img.max_stable = self.max_stable;
        img.same_vs_count = self.same_vs_count.clone();
        Some(img)
    }

    fn restore_state(&mut self, image: crate::state::MergeStateImage<P>) -> bool {
        if image.kind != crate::state::VariantKind::R1 {
            return false;
        }
        self.stats = image.apply_common(&mut self.inputs, &mut self.per_input);
        self.max_vs = image.max_vs;
        self.max_stable = image.max_stable;
        self.same_vs_count = image.same_vs_count;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_timestamps_in_rank_order() {
        // Two inputs present the same three-ranked Top-k result for Vs = 1.
        let mut lm = LMergeR1::new(2);
        let mut out = Vec::new();
        lm.push(StreamId(0), &Element::insert("r1", 1, 5), &mut out);
        lm.push(StreamId(0), &Element::insert("r2", 1, 5), &mut out);
        lm.push(StreamId(1), &Element::insert("r1", 1, 5), &mut out); // dup
        lm.push(StreamId(1), &Element::insert("r2", 1, 5), &mut out); // dup
        lm.push(StreamId(1), &Element::insert("r3", 1, 5), &mut out); // new!
        assert_eq!(
            out,
            vec![
                Element::insert("r1", 1, 5),
                Element::insert("r2", 1, 5),
                Element::insert("r3", 1, 5),
            ]
        );
        assert_eq!(lm.stats().dropped, 2);
    }

    #[test]
    fn advancing_vs_resets_counters() {
        let mut lm = LMergeR1::new(2);
        let mut out = Vec::new();
        lm.push(StreamId(0), &Element::insert("a", 1, 5), &mut out);
        lm.push(StreamId(0), &Element::insert("b", 2, 6), &mut out);
        // Input 1 catches up at Vs=2: first element there is a duplicate.
        lm.push(StreamId(1), &Element::insert("b", 2, 6), &mut out);
        lm.push(StreamId(1), &Element::insert("c", 2, 6), &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[2], Element::insert("c", 2, 6));
    }

    #[test]
    fn stale_vs_dropped() {
        let mut lm = LMergeR1::new(2);
        let mut out = Vec::new();
        lm.push(StreamId(0), &Element::insert("a", 5, 9), &mut out);
        lm.push(StreamId(1), &Element::insert("z", 3, 9), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(lm.stats().dropped, 1);
    }

    #[test]
    fn detached_counter_still_suppresses_duplicates() {
        let mut lm = LMergeR1::new(2);
        let mut out = Vec::new();
        lm.push(StreamId(0), &Element::insert("a", 1, 5), &mut out);
        lm.push(StreamId(0), &Element::insert("b", 1, 5), &mut out);
        lm.detach(StreamId(0));
        // Input 1 replays the same two elements: both are duplicates.
        lm.push(StreamId(1), &Element::insert("a", 1, 5), &mut out);
        lm.push(StreamId(1), &Element::insert("b", 1, 5), &mut out);
        lm.push(StreamId(1), &Element::insert("c", 1, 5), &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[2], Element::insert("c", 1, 5));
    }

    #[test]
    fn attach_grows_counters() {
        let mut lm: LMergeR1<&str> = LMergeR1::new(1);
        let id = lm.attach(Time::MIN);
        let mut out = Vec::new();
        lm.push(id, &Element::insert("a", 1, 5), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn theorem1_style_bound_holds() {
        let mut lm = LMergeR1::new(3);
        let mut out = Vec::new();
        for s in 0..3u32 {
            for i in 0..50 {
                lm.push(StreamId(s), &Element::insert("x", i, i + 10), &mut out);
                lm.push(StreamId(s), &Element::stable(i), &mut out);
            }
        }
        assert!(lm.stats().satisfies_theorem1());
    }
}
