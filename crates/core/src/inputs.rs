//! Input-stream registry: joining and leaving streams (Section V-B).
//!
//! A stream that attaches at runtime provides a timestamp `t` from which it
//! guarantees a correct TDB (every event with `Ve ≥ t`). Until the merge's
//! stable point reaches `t`, the newcomer's *data* is usable (duplicates are
//! suppressed by the algorithms anyway) but its `stable` punctuation must be
//! ignored — following it could freeze output the newcomer never saw. Once
//! `MaxStable ≥ t` the stream is marked joined and "LMerge can tolerate the
//! simultaneous failure or removal of all the other streams".
//!
//! A leaving stream is marked as such and excluded from all future
//! consideration; the algorithms purge its per-stream state.

use lmerge_temporal::{StreamId, Time};

/// Lifecycle state of one attached input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputState {
    /// Attached and fully trusted.
    Active,
    /// Attached but only correct from the given timestamp onward.
    Joining(Time),
    /// Demoted by a robustness policy: its data still merges (duplicates
    /// are absorbed anyway) but its punctuation is ignored until it catches
    /// back up to the output's stable point.
    Quarantined,
    /// Detached; its elements are ignored.
    Left,
}

impl From<InputState> for crate::api::InputHealth {
    fn from(s: InputState) -> crate::api::InputHealth {
        match s {
            InputState::Active => crate::api::InputHealth::Active,
            InputState::Joining(_) => crate::api::InputHealth::Joining,
            InputState::Quarantined => crate::api::InputHealth::Quarantined,
            InputState::Left => crate::api::InputHealth::Left,
        }
    }
}

/// Lifetime transition counters of one registry — the raw material for the
/// telemetry plane's quarantine/demotion series. Counters only ever grow;
/// they survive restores and re-quarantines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthTransitions {
    /// Active → Quarantined transitions (robustness-policy demotions).
    pub quarantines: u64,
    /// Quarantined → Active transitions (stragglers that caught back up).
    pub restores: u64,
    /// Transitions into Left (detaches of a live stream).
    pub departures: u64,
}

/// Registry of LMerge input streams.
#[derive(Clone, Debug, Default)]
pub struct Inputs {
    states: Vec<InputState>,
    transitions: HealthTransitions,
}

impl Inputs {
    /// A registry with `n` initially active streams (ids `0..n`).
    pub fn new(n: usize) -> Inputs {
        Inputs {
            states: vec![InputState::Active; n],
            transitions: HealthTransitions::default(),
        }
    }

    /// Attach a new stream that is correct from `join_time` onward.
    /// Returns the new stream's id.
    pub fn attach(&mut self, join_time: Time) -> StreamId {
        let id = StreamId(self.states.len() as u32);
        // A join time at or before -∞ means the stream saw everything.
        if join_time == Time::MIN {
            self.states.push(InputState::Active);
        } else {
            self.states.push(InputState::Joining(join_time));
        }
        id
    }

    /// Mark a stream as left. Idempotent; unknown ids are ignored.
    pub fn detach(&mut self, id: StreamId) {
        if let Some(s) = self.states.get_mut(id.0 as usize) {
            if *s != InputState::Left {
                self.transitions.departures += 1;
            }
            *s = InputState::Left;
        }
    }

    /// Promote joining streams whose join time is now covered.
    pub fn on_stable_advance(&mut self, max_stable: Time) {
        for s in &mut self.states {
            if let InputState::Joining(t) = s {
                if max_stable >= *t {
                    *s = InputState::Active;
                }
            }
        }
    }

    /// Quarantine an active stream: keep merging its data but stop letting
    /// its punctuation drive output progress. Only `Active` streams can be
    /// quarantined (a joining stream's punctuation is already gated);
    /// returns whether the transition happened.
    pub fn quarantine(&mut self, id: StreamId) -> bool {
        match self.states.get_mut(id.0 as usize) {
            Some(s) if *s == InputState::Active => {
                *s = InputState::Quarantined;
                self.transitions.quarantines += 1;
                true
            }
            _ => false,
        }
    }

    /// Restore a quarantined stream to active (it caught back up). Returns
    /// whether the transition happened.
    pub fn restore(&mut self, id: StreamId) -> bool {
        match self.states.get_mut(id.0 as usize) {
            Some(s) if *s == InputState::Quarantined => {
                *s = InputState::Active;
                self.transitions.restores += 1;
                true
            }
            _ => false,
        }
    }

    /// Lifetime health-transition counts (quarantines, restores,
    /// departures) — monotone, unaffected by later state changes.
    pub fn transitions(&self) -> HealthTransitions {
        self.transitions
    }

    /// State of a stream (unknown ids read as `Left`).
    pub fn state(&self, id: StreamId) -> InputState {
        self.states
            .get(id.0 as usize)
            .copied()
            .unwrap_or(InputState::Left)
    }

    /// Whether the stream's data elements should be processed.
    pub fn accepts_data(&self, id: StreamId) -> bool {
        !matches!(self.state(id), InputState::Left)
    }

    /// Whether the stream's `stable` punctuation may drive output progress.
    pub fn accepts_stable(&self, id: StreamId) -> bool {
        matches!(self.state(id), InputState::Active)
    }

    /// Total ids ever allocated (including left streams).
    pub fn allocated(&self) -> usize {
        self.states.len()
    }

    /// Number of currently attached (active or joining) streams.
    pub fn live(&self) -> usize {
        self.states
            .iter()
            .filter(|s| !matches!(s, InputState::Left))
            .count()
    }

    /// Iterate ids of currently attached streams.
    pub fn live_ids(&self) -> impl Iterator<Item = StreamId> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| (!matches!(s, InputState::Left)).then_some(StreamId(i as u32)))
    }

    /// Approximate memory footprint of the registry itself.
    pub fn memory_bytes(&self) -> usize {
        self.states.capacity() * std::mem::size_of::<InputState>()
    }

    /// Export every stream's state in id order (checkpointing).
    pub fn export_states(&self) -> Vec<crate::state::InputStateImage> {
        self.states
            .iter()
            .map(|s| match s {
                InputState::Active => crate::state::InputStateImage::Active,
                InputState::Joining(t) => crate::state::InputStateImage::Joining(*t),
                InputState::Quarantined => crate::state::InputStateImage::Quarantined,
                InputState::Left => crate::state::InputStateImage::Left,
            })
            .collect()
    }

    /// Replace the registry wholesale from a checkpoint image: states in id
    /// order plus the lifetime transition counters. The restore path, not a
    /// lifecycle transition — nothing is counted.
    pub fn restore_registry(
        &mut self,
        states: &[crate::state::InputStateImage],
        transitions: HealthTransitions,
    ) {
        self.states = states
            .iter()
            .map(|s| match s {
                crate::state::InputStateImage::Active => InputState::Active,
                crate::state::InputStateImage::Joining(t) => InputState::Joining(*t),
                crate::state::InputStateImage::Quarantined => InputState::Quarantined,
                crate::state::InputStateImage::Left => InputState::Left,
            })
            .collect();
        self.transitions = transitions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_streams_are_active() {
        let inputs = Inputs::new(3);
        assert_eq!(inputs.live(), 3);
        assert!(inputs.accepts_data(StreamId(0)));
        assert!(inputs.accepts_stable(StreamId(2)));
        assert!(!inputs.accepts_data(StreamId(7)), "unknown id is Left");
    }

    #[test]
    fn joining_stream_gates_stable_until_covered() {
        let mut inputs = Inputs::new(1);
        let id = inputs.attach(Time(100));
        assert!(inputs.accepts_data(id), "data usable immediately");
        assert!(!inputs.accepts_stable(id), "punctuation gated");
        inputs.on_stable_advance(Time(99));
        assert!(!inputs.accepts_stable(id));
        inputs.on_stable_advance(Time(100));
        assert!(inputs.accepts_stable(id), "joined at MaxStable >= t");
    }

    #[test]
    fn attach_from_beginning_is_immediately_active() {
        let mut inputs = Inputs::new(0);
        let id = inputs.attach(Time::MIN);
        assert!(inputs.accepts_stable(id));
    }

    #[test]
    fn detach_excludes_stream() {
        let mut inputs = Inputs::new(2);
        inputs.detach(StreamId(0));
        assert!(!inputs.accepts_data(StreamId(0)));
        assert!(!inputs.accepts_stable(StreamId(0)));
        assert_eq!(inputs.live(), 1);
        assert_eq!(inputs.live_ids().collect::<Vec<_>>(), vec![StreamId(1)]);
        // Idempotent, and allocated ids are never reused.
        inputs.detach(StreamId(0));
        assert_eq!(inputs.allocated(), 2);
    }

    #[test]
    fn detached_stream_stays_left_after_stable_advance() {
        let mut inputs = Inputs::new(1);
        let id = inputs.attach(Time(10));
        inputs.detach(id);
        inputs.on_stable_advance(Time(50));
        assert_eq!(inputs.state(id), InputState::Left);
    }

    #[test]
    fn quarantine_gates_stable_but_not_data() {
        let mut inputs = Inputs::new(2);
        assert!(inputs.quarantine(StreamId(1)));
        assert_eq!(inputs.state(StreamId(1)), InputState::Quarantined);
        assert!(inputs.accepts_data(StreamId(1)), "data still merges");
        assert!(!inputs.accepts_stable(StreamId(1)), "punctuation ignored");
        assert_eq!(inputs.live(), 2, "quarantined streams stay attached");
        assert!(inputs.restore(StreamId(1)));
        assert!(inputs.accepts_stable(StreamId(1)));
    }

    #[test]
    fn transition_counters_track_lifecycle() {
        let mut inputs = Inputs::new(3);
        assert_eq!(inputs.transitions(), HealthTransitions::default());
        inputs.quarantine(StreamId(0));
        inputs.quarantine(StreamId(1));
        inputs.restore(StreamId(0));
        inputs.quarantine(StreamId(0)); // re-quarantine counts again
        inputs.detach(StreamId(2));
        inputs.detach(StreamId(2)); // idempotent detach counts once
        let t = inputs.transitions();
        assert_eq!(t.quarantines, 3);
        assert_eq!(t.restores, 1);
        assert_eq!(t.departures, 1);
        // Failed transitions don't count.
        inputs.quarantine(StreamId(2));
        inputs.restore(StreamId(1));
        inputs.restore(StreamId(1));
        assert_eq!(inputs.transitions().quarantines, 3);
        assert_eq!(inputs.transitions().restores, 2);
    }

    #[test]
    fn quarantine_and_restore_only_transition_valid_states() {
        let mut inputs = Inputs::new(1);
        let joining = inputs.attach(Time(100));
        assert!(!inputs.quarantine(joining), "joining is already gated");
        assert!(!inputs.restore(StreamId(0)), "active needs no restore");
        inputs.detach(StreamId(0));
        assert!(!inputs.quarantine(StreamId(0)), "left streams stay left");
        assert!(!inputs.quarantine(StreamId(9)), "unknown ids are ignored");
    }
}
