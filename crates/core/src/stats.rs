//! Operator statistics: element counts in and out.
//!
//! These counters back two things: the *output size / chattiness* metric of
//! the paper's evaluation ("the number of adjust() elements produced",
//! Section VI-B), and the Theorem 1 test — Algorithm R3 outputs no more
//! insert+adjust elements than the inserts it received, and no more stables
//! than the stables it received.
//!
//! [`PerInput`] breaks the input-side counts down by replica, and remembers
//! each replica's latest announced stable point — the raw material for the
//! per-input lag diagnostics ("which input is holding the merge back",
//! Section V-D).

use lmerge_temporal::{Element, Payload, StreamId, Time};

/// Counters of elements consumed and produced by an LMerge instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Insert elements received across all inputs.
    pub inserts_in: u64,
    /// Adjust elements received across all inputs.
    pub adjusts_in: u64,
    /// Stable elements received across all inputs.
    pub stables_in: u64,
    /// Insert elements emitted.
    pub inserts_out: u64,
    /// Adjust elements emitted (the chattiness metric).
    pub adjusts_out: u64,
    /// Stable elements emitted.
    pub stables_out: u64,
    /// Data elements dropped as duplicates/stale (already output or frozen).
    pub dropped: u64,
}

impl MergeStats {
    /// Total data+punctuation elements received.
    pub fn elements_in(&self) -> u64 {
        self.inserts_in + self.adjusts_in + self.stables_in
    }

    /// Total elements emitted.
    pub fn elements_out(&self) -> u64 {
        self.inserts_out + self.adjusts_out + self.stables_out
    }

    /// The paper's Theorem 1 bound for Algorithm R3: data output is bounded
    /// by insert input, stable output by stable input.
    pub fn satisfies_theorem1(&self) -> bool {
        self.inserts_out + self.adjusts_out <= self.inserts_in
            && self.stables_out <= self.stables_in
    }

    /// The flat tuple shape the checkpoint image carries.
    pub fn to_tuple(self) -> (u64, u64, u64, u64, u64, u64, u64) {
        (
            self.inserts_in,
            self.adjusts_in,
            self.stables_in,
            self.inserts_out,
            self.adjusts_out,
            self.stables_out,
            self.dropped,
        )
    }

    /// Inverse of [`to_tuple`](MergeStats::to_tuple).
    pub fn from_tuple(t: (u64, u64, u64, u64, u64, u64, u64)) -> MergeStats {
        MergeStats {
            inserts_in: t.0,
            adjusts_in: t.1,
            stables_in: t.2,
            inserts_out: t.3,
            adjusts_out: t.4,
            stables_out: t.5,
            dropped: t.6,
        }
    }
}

/// Delivery counters for one input replica.
///
/// Counts are taken at `push` entry, before join/leave gating — they answer
/// "what did this replica send", not "what did the merge accept".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InputCounters {
    /// Insert elements pushed by this input.
    pub inserts: u64,
    /// Adjust elements pushed by this input.
    pub adjusts: u64,
    /// Stable elements pushed by this input.
    pub stables: u64,
    /// The latest stable point this input announced (`Time::MIN` if none).
    pub last_stable: Time,
}

impl Default for InputCounters {
    fn default() -> InputCounters {
        InputCounters {
            inserts: 0,
            adjusts: 0,
            stables: 0,
            last_stable: Time::MIN,
        }
    }
}

impl InputCounters {
    /// Data (insert + adjust) elements pushed by this input.
    pub fn data(&self) -> u64 {
        self.inserts + self.adjusts
    }

    /// All elements pushed by this input.
    pub fn elements(&self) -> u64 {
        self.inserts + self.adjusts + self.stables
    }
}

/// Per-input counter registry shared by every LMerge variant.
#[derive(Clone, Debug, Default)]
pub struct PerInput {
    counters: Vec<InputCounters>,
}

impl PerInput {
    /// Counters for `n` initially attached inputs.
    pub fn new(n: usize) -> PerInput {
        PerInput {
            counters: vec![InputCounters::default(); n],
        }
    }

    /// Count one pushed element (ids beyond the current size grow the
    /// registry, so late-attached streams are always covered).
    pub fn on_element<P: Payload>(&mut self, input: StreamId, element: &Element<P>) {
        let i = input.0 as usize;
        if i >= self.counters.len() {
            self.counters.resize(i + 1, InputCounters::default());
        }
        let c = &mut self.counters[i];
        match element {
            Element::Insert(_) => c.inserts += 1,
            Element::Adjust { .. } => c.adjusts += 1,
            Element::Stable(t) => {
                c.stables += 1;
                c.last_stable = c.last_stable.max(*t);
            }
        }
    }

    /// Count a whole data-only batch in one step (the batched-push fast
    /// path; punctuation-bearing batches must go through
    /// [`PerInput::on_element`] so `last_stable` stays correct).
    pub fn on_data_batch(&mut self, input: StreamId, inserts: u64, adjusts: u64) {
        let i = input.0 as usize;
        if i >= self.counters.len() {
            self.counters.resize(i + 1, InputCounters::default());
        }
        self.counters[i].inserts += inserts;
        self.counters[i].adjusts += adjusts;
    }

    /// Register one newly attached input.
    pub fn on_attach(&mut self) {
        self.counters.push(InputCounters::default());
    }

    /// The counters, indexed by input id.
    pub fn counters(&self) -> &[InputCounters] {
        &self.counters
    }

    /// Approximate memory footprint of the registry.
    pub fn memory_bytes(&self) -> usize {
        self.counters.capacity() * std::mem::size_of::<InputCounters>()
    }

    /// Export every input's counters in id order (checkpointing).
    pub fn export_counters(&self) -> Vec<crate::state::CountersImage> {
        self.counters
            .iter()
            .map(|c| crate::state::CountersImage {
                inserts: c.inserts,
                adjusts: c.adjusts,
                stables: c.stables,
                last_stable: c.last_stable,
            })
            .collect()
    }

    /// Replace the registry wholesale from a checkpoint image.
    pub fn restore_counters(&mut self, counters: &[crate::state::CountersImage]) {
        self.counters = counters
            .iter()
            .map(|c| InputCounters {
                inserts: c.inserts,
                adjusts: c.adjusts,
                stables: c.stables,
                last_stable: c.last_stable,
            })
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = MergeStats {
            inserts_in: 10,
            adjusts_in: 2,
            stables_in: 3,
            inserts_out: 8,
            adjusts_out: 1,
            stables_out: 3,
            dropped: 3,
        };
        assert_eq!(s.elements_in(), 15);
        assert_eq!(s.elements_out(), 12);
        assert!(s.satisfies_theorem1());
    }

    #[test]
    fn theorem1_violation_detected() {
        let s = MergeStats {
            inserts_in: 5,
            inserts_out: 4,
            adjusts_out: 2,
            ..Default::default()
        };
        assert!(!s.satisfies_theorem1());
    }

    #[test]
    fn per_input_counts_by_replica() {
        let mut p = PerInput::new(2);
        p.on_element(StreamId(0), &Element::insert("a", 1, 5));
        p.on_element(StreamId(0), &Element::adjust("a", 1, 5, 7));
        p.on_element(StreamId(1), &Element::<&str>::stable(9));
        p.on_element(StreamId(1), &Element::<&str>::stable(4)); // regression ignored
        assert_eq!(p.counters()[0].data(), 2);
        assert_eq!(p.counters()[0].last_stable, Time::MIN);
        assert_eq!(p.counters()[1].stables, 2);
        assert_eq!(p.counters()[1].last_stable, Time(9));
        assert_eq!(p.counters()[1].elements(), 2);
    }

    #[test]
    fn per_input_grows_for_late_ids() {
        let mut p = PerInput::new(1);
        p.on_element(StreamId(3), &Element::insert("x", 1, 2));
        assert_eq!(p.counters().len(), 4);
        p.on_attach();
        assert_eq!(p.counters().len(), 5);
    }
}
