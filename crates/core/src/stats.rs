//! Operator statistics: element counts in and out.
//!
//! These counters back two things: the *output size / chattiness* metric of
//! the paper's evaluation ("the number of adjust() elements produced",
//! Section VI-B), and the Theorem 1 test — Algorithm R3 outputs no more
//! insert+adjust elements than the inserts it received, and no more stables
//! than the stables it received.

/// Counters of elements consumed and produced by an LMerge instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Insert elements received across all inputs.
    pub inserts_in: u64,
    /// Adjust elements received across all inputs.
    pub adjusts_in: u64,
    /// Stable elements received across all inputs.
    pub stables_in: u64,
    /// Insert elements emitted.
    pub inserts_out: u64,
    /// Adjust elements emitted (the chattiness metric).
    pub adjusts_out: u64,
    /// Stable elements emitted.
    pub stables_out: u64,
    /// Data elements dropped as duplicates/stale (already output or frozen).
    pub dropped: u64,
}

impl MergeStats {
    /// Total data+punctuation elements received.
    pub fn elements_in(&self) -> u64 {
        self.inserts_in + self.adjusts_in + self.stables_in
    }

    /// Total elements emitted.
    pub fn elements_out(&self) -> u64 {
        self.inserts_out + self.adjusts_out + self.stables_out
    }

    /// The paper's Theorem 1 bound for Algorithm R3: data output is bounded
    /// by insert input, stable output by stable input.
    pub fn satisfies_theorem1(&self) -> bool {
        self.inserts_out + self.adjusts_out <= self.inserts_in
            && self.stables_out <= self.stables_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = MergeStats {
            inserts_in: 10,
            adjusts_in: 2,
            stables_in: 3,
            inserts_out: 8,
            adjusts_out: 1,
            stables_out: 3,
            dropped: 3,
        };
        assert_eq!(s.elements_in(), 15);
        assert_eq!(s.elements_out(), 12);
        assert!(s.satisfies_theorem1());
    }

    #[test]
    fn theorem1_violation_detected() {
        let s = MergeStats {
            inserts_in: 5,
            inserts_out: 4,
            adjusts_out: 2,
            ..Default::default()
        };
        assert!(!s.satisfies_theorem1());
    }
}
