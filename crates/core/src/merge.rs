//! Convenience entry points for merging whole streams.
//!
//! The operator API ([`crate::LogicalMerge::push`]) is element-at-a-time —
//! right for engines. Applications that simply hold several complete (or
//! partially delivered) physical streams and want the merged result can use
//! these helpers instead of writing the interleaving loop by hand.

use crate::policy::MergePolicy;
use crate::select::new_for_level;
use crate::stats::MergeStats;
use lmerge_properties::RLevel;
use lmerge_temporal::{Element, Payload, StreamId};

/// How input elements are interleaved into the merge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Interleave {
    /// One element from each input in turn (models simultaneous arrival).
    #[default]
    RoundRobin,
    /// All of input 0, then all of input 1, … (models a straggler replay).
    Sequential,
}

/// Merge complete physical streams with the algorithm for `level`,
/// returning the merged stream and the operator statistics.
///
/// ```
/// use lmerge_core::{merge_streams, Interleave, MergePolicy};
/// use lmerge_properties::RLevel;
/// use lmerge_temporal::{Element, Time};
///
/// let a = vec![Element::insert("x", 1, 5), Element::stable(10)];
/// let b = vec![Element::insert("x", 1, 5), Element::stable(10)];
/// let (merged, stats) = merge_streams(
///     RLevel::R3,
///     MergePolicy::paper_default(),
///     Interleave::RoundRobin,
///     &[a, b],
/// );
/// assert_eq!(stats.inserts_out, 1, "duplicate absorbed");
/// assert_eq!(merged.last(), Some(&Element::stable(Time(10))));
/// ```
pub fn merge_streams<P: Payload>(
    level: RLevel,
    policy: MergePolicy,
    interleave: Interleave,
    inputs: &[Vec<Element<P>>],
) -> (Vec<Element<P>>, MergeStats) {
    let mut lm = new_for_level::<P>(level, inputs.len(), policy);
    let mut out = Vec::new();
    match interleave {
        Interleave::RoundRobin => {
            let longest = inputs.iter().map(Vec::len).max().unwrap_or(0);
            for k in 0..longest {
                for (i, input) in inputs.iter().enumerate() {
                    if let Some(e) = input.get(k) {
                        lm.push(StreamId(i as u32), e, &mut out);
                    }
                }
            }
        }
        Interleave::Sequential => {
            for (i, input) in inputs.iter().enumerate() {
                for e in input {
                    lm.push(StreamId(i as u32), e, &mut out);
                }
            }
        }
    }
    let stats = lm.stats();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_temporal::reconstitute::tdb_of;
    use lmerge_temporal::Time;

    fn streams() -> Vec<Vec<Element<&'static str>>> {
        vec![
            vec![
                Element::insert("a", 1, 5),
                Element::insert("b", 2, 9),
                Element::stable(Time::INFINITY),
            ],
            vec![
                Element::insert("b", 2, 4),
                Element::adjust("b", 2, 4, 9),
                Element::insert("a", 1, 5),
                Element::stable(Time::INFINITY),
            ],
        ]
    }

    #[test]
    fn round_robin_and_sequential_agree_logically() {
        let (rr, _) = merge_streams(
            RLevel::R3,
            MergePolicy::paper_default(),
            Interleave::RoundRobin,
            &streams(),
        );
        let (seq, _) = merge_streams(
            RLevel::R3,
            MergePolicy::paper_default(),
            Interleave::Sequential,
            &streams(),
        );
        assert_eq!(tdb_of(&rr).unwrap(), tdb_of(&seq).unwrap());
    }

    #[test]
    fn r4_works_through_the_helper() {
        let (out, stats) = merge_streams(
            RLevel::R4,
            MergePolicy::paper_default(),
            Interleave::RoundRobin,
            &streams(),
        );
        assert_eq!(tdb_of(&out).unwrap().len(), 2);
        assert!(stats.satisfies_theorem1());
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        let (out, stats) = merge_streams::<&str>(
            RLevel::R3,
            MergePolicy::paper_default(),
            Interleave::RoundRobin,
            &[],
        );
        assert!(out.is_empty());
        assert_eq!(stats.elements_in(), 0);
    }
}
