//! A bounded single-producer / single-consumer ring queue.
//!
//! Two delivery paths share this ring: the engine's pipelined executor
//! feeds each shard worker through one (the router thread is the only
//! producer, the worker the only consumer), and the lmerge-net ingest
//! server feeds each connection's decoded frames through one (the socket
//! reader is the only producer, the merge-side `NetSource` the only
//! consumer — the ring's free space is what the server grants back to the
//! client as frame credits). The single-producer/single-consumer
//! restriction makes a lock-free ring trivial — one monotone `head`
//! (consumer cursor) and one monotone `tail` (producer cursor), each
//! written by exactly one side and read by the other with
//! acquire/release ordering. No dependencies, no unstable features; the
//! slot storage is `UnsafeCell<MaybeUninit<T>>` exactly as in the
//! standard library's channel internals.
//!
//! Capacity is exact (`capacity` slots usable, not `capacity - 1`):
//! fullness is `tail - head == capacity` on the monotone cursors, and the
//! slot index is `cursor % capacity`.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Inner<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Consumer cursor: slots `< head` have been popped.
    head: AtomicU64,
    /// Producer cursor: slots `< tail` have been pushed.
    tail: AtomicU64,
}

// The cells are only touched by the side that owns the cursor range:
// the producer writes `[tail]` before publishing, the consumer reads
// `[head]` after observing it published. `T: Send` is all that moving a
// value across the queue requires.
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Both sides are gone (`Arc` refcount hit zero); drain what the
        // consumer never took.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let cap = self.slots.len() as u64;
        for c in head..tail {
            unsafe {
                (*self.slots[(c % cap) as usize].get()).assume_init_drop();
            }
        }
    }
}

/// The producing half of a bounded SPSC queue.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Cached copy of the consumer cursor: refreshed only when the ring
    /// looks full, so the fast path is one relaxed load + one store.
    head_cache: u64,
    tail: u64,
}

/// The consuming half of a bounded SPSC queue.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Cached copy of the producer cursor, refreshed when it runs out.
    tail_cache: u64,
    head: u64,
}

/// A bounded SPSC ring with exactly `capacity` usable slots.
pub fn ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let capacity = capacity.max(1);
    let inner = Arc::new(Inner {
        slots: (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
        head: AtomicU64::new(0),
        tail: AtomicU64::new(0),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            head_cache: 0,
            tail: 0,
        },
        Consumer {
            inner,
            tail_cache: 0,
            head: 0,
        },
    )
}

impl<T: Send> Producer<T> {
    /// Try to enqueue; returns the value back if the ring is full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let cap = self.inner.slots.len() as u64;
        if self.tail - self.head_cache == cap {
            self.head_cache = self.inner.head.load(Ordering::Acquire);
            if self.tail - self.head_cache == cap {
                return Err(value);
            }
        }
        let slot = (self.tail % cap) as usize;
        unsafe { (*self.inner.slots[slot].get()).write(value) };
        self.tail += 1;
        self.inner.tail.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Elements currently in flight (approximate from the producer side —
    /// the consumer may drain concurrently, so this is an upper bound).
    pub fn len(&self) -> usize {
        (self.tail - self.inner.head.load(Ordering::Acquire)) as usize
    }

    /// Whether the ring currently holds nothing (producer-side view).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's capacity in slots.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }
}

impl<T: Send> Consumer<T> {
    /// Try to dequeue; `None` when the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        if self.head == self.tail_cache {
            self.tail_cache = self.inner.tail.load(Ordering::Acquire);
            if self.head == self.tail_cache {
                return None;
            }
        }
        let cap = self.inner.slots.len() as u64;
        let slot = (self.head % cap) as usize;
        let value = unsafe { (*self.inner.slots[slot].get()).assume_init_read() };
        self.head += 1;
        self.inner.head.store(self.head, Ordering::Release);
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (mut tx, mut rx) = ring::<u32>(4);
        for v in 0..4 {
            tx.push(v).unwrap();
        }
        assert_eq!(tx.push(99), Err(99), "exactly `capacity` slots");
        for v in 0..4 {
            assert_eq!(rx.pop(), Some(v));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn wraps_around_many_times() {
        let (mut tx, mut rx) = ring::<u64>(3);
        for v in 0..1000u64 {
            assert!(tx.push(v).is_ok(), "consumer keeps pace in this test");
            assert_eq!(rx.pop(), Some(v));
        }
        assert!(tx.is_empty());
    }

    #[test]
    fn crosses_threads() {
        let (mut tx, mut rx) = ring::<u64>(8);
        const N: u64 = 100_000;
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for v in 0..N {
                    let mut item = v;
                    while let Err(back) = tx.push(item) {
                        item = back;
                        std::hint::spin_loop();
                    }
                }
            });
            let mut expected = 0;
            while expected < N {
                if let Some(v) = rx.pop() {
                    assert_eq!(v, expected);
                    expected += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
        });
    }

    #[test]
    fn drops_undelivered_items() {
        struct Counted(Arc<AtomicU64>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicU64::new(0));
        let (mut tx, mut rx) = ring::<Counted>(4);
        tx.push(Counted(Arc::clone(&drops))).ok().unwrap();
        tx.push(Counted(Arc::clone(&drops))).ok().unwrap();
        drop(rx.pop()); // one consumed
        drop(tx);
        drop(rx);
        assert_eq!(drops.load(Ordering::SeqCst), 2, "ring drops the leftover");
    }
}
