//! Algorithm R3 (the paper's preferred `LMR3+`): LMerge over streams with
//! arbitrary element kinds and order, where `(Vs, Payload)` is a key
//! (paper Section IV-D, Algorithm R3).
//!
//! State is the [`In2t`] index. Inserts are reflected eagerly (under the
//! default policy); adjusts are absorbed silently; divergence between the
//! output and the inputs is corrected *only* when a `stable` element would
//! otherwise freeze it — which is what yields the paper's Theorem 1
//! non-chattiness bound.

use crate::api::{BatchMeta, InputHealth, LogicalMerge};
use crate::in2t::{In2t, SweepAction};
use crate::inputs::{InputState, Inputs};
use crate::policy::{AdjustPolicy, InsertPolicy, MergePolicy};
use crate::stats::{InputCounters, MergeStats, PerInput};
use lmerge_properties::RLevel;
use lmerge_temporal::{Element, Payload, StreamId, Time};

/// The R3 merge over the shared two-tier index (`LMR3+`).
///
/// ```
/// use lmerge_core::{LMergeR3, LogicalMerge};
/// use lmerge_temporal::{Element, StreamId, Time};
///
/// let mut lm: LMergeR3<&str> = LMergeR3::new(2);
/// let mut out = Vec::new();
/// // Two inputs disagree on A's end time; the first presentation flows.
/// lm.push(StreamId(0), &Element::insert("A", 6, 7), &mut out);
/// lm.push(StreamId(1), &Element::insert("A", 6, 12), &mut out);
/// assert_eq!(out.len(), 1);
/// // Punctuation forces reconciliation before freezing.
/// lm.push(StreamId(1), &Element::stable(20), &mut out);
/// assert_eq!(out[1], Element::adjust("A", 6, 7, 12));
/// assert_eq!(lm.max_stable(), Time(20));
/// ```
#[derive(Debug)]
pub struct LMergeR3<P: Payload> {
    index: In2t<P>,
    max_stable: Time,
    policy: MergePolicy,
    inputs: Inputs,
    stats: MergeStats,
    per_input: PerInput,
    /// The stream that last advanced `MaxStable` (drives `FollowLeader`).
    leader: Option<StreamId>,
    /// Live index entries held per input (robustness memory guard).
    live_entries: Vec<u64>,
    /// Where `max_live_entries` demotions spill their half-frozen state
    /// (none: demotion drops it, the pre-durability behaviour).
    spill: crate::state::SpillSlot<P>,
}

impl<P: Payload> LMergeR3<P> {
    /// An R3 merge over `n` initially attached inputs, default policy.
    pub fn new(n: usize) -> LMergeR3<P> {
        LMergeR3::with_policy(n, MergePolicy::paper_default())
    }

    /// An R3 merge with an explicit policy bundle (Section V-A).
    pub fn with_policy(n: usize, policy: MergePolicy) -> LMergeR3<P> {
        LMergeR3 {
            index: In2t::new(),
            max_stable: Time::MIN,
            policy,
            inputs: Inputs::new(n),
            stats: MergeStats::default(),
            per_input: PerInput::new(n),
            leader: None,
            live_entries: vec![0; n],
            spill: crate::state::SpillSlot::default(),
        }
    }

    /// Number of live `(Vs, Payload)` nodes (the paper's `w`).
    pub fn live_nodes(&self) -> usize {
        self.index.len()
    }

    /// Live index entries currently attributed to `input` (feeds the
    /// robustness memory guard; exposed for tests and diagnostics).
    pub fn live_entries(&self, input: StreamId) -> u64 {
        self.live_entries
            .get(input.0 as usize)
            .copied()
            .unwrap_or(0)
    }

    fn note_live_entry(&mut self, s: StreamId) {
        let i = s.0 as usize;
        if i >= self.live_entries.len() {
            self.live_entries.resize(i + 1, 0);
        }
        self.live_entries[i] += 1;
    }

    /// Bounded-memory guard: demote (detach) an input once it exceeds its
    /// live-entry budget. Checked at push/push_batch boundaries so the
    /// per-element hot paths stay branch-light. With a spill handler
    /// installed, the input's half-frozen entries leave as a sorted run
    /// before the detach drops them from the index.
    fn enforce_entry_bound(&mut self, input: StreamId) {
        if let Some(bound) = self.policy.robustness.max_live_entries {
            if self.live_entries(input) > bound {
                if let Some(handler) = self.spill.0.as_mut() {
                    let run: Vec<crate::state::StateEntry<P>> = self
                        .index
                        .iter_all()
                        .filter_map(|(vs, payload, node)| {
                            let ve = node.input_ve(input)?;
                            Some(crate::state::StateEntry {
                                vs,
                                payload: payload.clone(),
                                per_input: vec![(input.0, vec![(ve, 1)])],
                                output: node.output_ve.map(|v| vec![(v, 1)]).unwrap_or_default(),
                            })
                        })
                        .collect();
                    if !run.is_empty() {
                        handler.spill(input, &run);
                    }
                }
                self.detach(input);
            }
        }
    }

    /// Quarantine any active input whose announced stable point trails the
    /// freshly advanced output stable `t` by more than the policy margin.
    /// The driving stream `s` is exempt (it just proved it is current).
    fn quarantine_laggards(&mut self, s: StreamId, t: Time) {
        let Some(lag) = self.policy.robustness.quarantine_lag else {
            return;
        };
        if t == Time::INFINITY {
            return;
        }
        let threshold = t.saturating_sub(lag);
        for (i, c) in self.per_input.counters().iter().enumerate() {
            let id = StreamId(i as u32);
            if id != s && c.last_stable != Time::MIN && c.last_stable < threshold {
                self.inputs.quarantine(id);
            }
        }
    }

    fn on_insert(&mut self, s: StreamId, e: &lmerge_temporal::Event<P>, out: &mut Vec<Element<P>>) {
        match self.index.get_mut(e.vs, &e.payload) {
            None => {
                // Line 6: a missing node below MaxStable was already frozen
                // (and possibly deleted); the element is stale.
                if e.vs < self.max_stable {
                    self.stats.dropped += 1;
                    return;
                }
                let emit = match self.policy.insert {
                    InsertPolicy::Immediate => true,
                    InsertPolicy::WaitHalfFrozen => false,
                    InsertPolicy::Quorum(k) => 1 >= k,
                    // Before any punctuation there is no leader; stay
                    // responsive and treat every input as leading.
                    InsertPolicy::FollowLeader => self.leader.is_none_or(|l| l == s),
                };
                let node = self.index.add_node(e.vs, e.payload.clone());
                node.set_input(s, e.ve);
                if emit {
                    node.output_ve = Some(e.ve);
                }
                self.index.note_entry_added();
                self.note_live_entry(s);
                if emit {
                    self.stats.inserts_out += 1;
                    out.push(Element::Insert(e.clone()));
                } else {
                    self.stats.dropped += 1;
                }
            }
            Some(node) => {
                // Line 12: another input already brought the event; just
                // record this stream's view of its end time. A pending
                // Quorum policy may now be satisfied — all on the one
                // lookup's borrow, with bookkeeping deferred past it.
                let was_new = node.set_input(s, e.ve);
                let mut emit_now = false;
                if node.output_ve.is_none() {
                    emit_now = match self.policy.insert {
                        InsertPolicy::Quorum(k) => node.support() >= k,
                        InsertPolicy::FollowLeader => self.leader.is_none_or(|l| l == s),
                        _ => false,
                    };
                    if emit_now {
                        node.output_ve = Some(e.ve);
                    }
                }
                if was_new {
                    self.index.note_entry_added();
                    self.note_live_entry(s);
                }
                if emit_now {
                    self.stats.inserts_out += 1;
                    out.push(Element::Insert(e.clone()));
                } else {
                    self.stats.dropped += 1;
                }
            }
        }
    }

    fn on_adjust(
        &mut self,
        s: StreamId,
        payload: &P,
        vs: Time,
        ve: Time,
        out: &mut Vec<Element<P>>,
    ) {
        // Line 13: adjusts for unknown nodes are stale — drop.
        let max_stable = self.max_stable;
        let Some(node) = self.index.get_mut(vs, payload) else {
            self.stats.dropped += 1;
            return;
        };
        let was_new = node.set_input(s, ve);
        // Location 1 (Section V-A): the default policy absorbs the adjust;
        // the eager policy reflects it immediately when doing so cannot
        // contradict the output's stable point. Either way the node is
        // touched exactly once — no second lookup.
        let mut emitted = None;
        if self.policy.adjust == AdjustPolicy::Eager {
            if let Some(out_ve) = node.output_ve {
                // The new end must itself respect the output's stable point
                // (a removal counts as legal only while Vs is unfrozen).
                let legal = if ve == vs {
                    vs >= max_stable
                } else {
                    ve >= max_stable
                };
                if legal && out_ve != ve {
                    // A removal (ve == vs) takes the event out of the
                    // output entirely: the node reverts to "not emitted"
                    // so later activity may legally re-insert it.
                    node.output_ve = if ve == vs { None } else { Some(ve) };
                    emitted = Some(out_ve);
                }
            }
        }
        if was_new {
            self.index.note_entry_added();
            self.note_live_entry(s);
        }
        if let Some(out_ve) = emitted {
            self.stats.adjusts_out += 1;
            out.push(Element::adjust(payload.clone(), vs, out_ve, ve));
        }
    }

    fn on_stable(&mut self, s: StreamId, t: Time, out: &mut Vec<Element<P>>) {
        let t = self.policy.stable.effective(t);
        // Line 16: only stables that advance MaxStable do work.
        if t <= self.max_stable {
            return;
        }
        // Lines 17–27: reconcile every node that is (or becomes) half frozen
        // with the view of the stream that is driving progress. One in-place
        // sweep: no payload clones, no per-key re-lookup, retirement during
        // the walk.
        let max_stable = self.max_stable;
        let stats = &mut self.stats;
        let live_entries = &mut self.live_entries;
        self.index.sweep_half_frozen(t, |vs, payload, node| {
            // Line 20: if the driving stream lacks the event entirely, its
            // effective end time is Vs — i.e. the event does not exist.
            let in_ve = node.input_ve(s).unwrap_or(vs);
            // Emitting the correction must keep the output stream well
            // formed w.r.t. its *current* stable point. Mutually consistent
            // inputs always satisfy this; the guard protects the output if
            // an input lies.
            let legal = if in_ve == vs {
                vs >= max_stable
            } else {
                in_ve >= max_stable
            };
            match node.output_ve {
                Some(out_ve) => {
                    // Lines 22–25: correct the output only when the
                    // divergence is about to become unfixable.
                    if legal && in_ve != out_ve && (in_ve < t || out_ve < t) {
                        node.output_ve = Some(in_ve);
                        stats.adjusts_out += 1;
                        out.push(Element::adjust(payload.clone(), vs, out_ve, in_ve));
                    }
                }
                None => {
                    // Deferred-insert policies: the event's existence is now
                    // settled, so it must be emitted before the stable.
                    if in_ve != vs && vs >= max_stable {
                        node.output_ve = Some(in_ve);
                        stats.inserts_out += 1;
                        out.push(Element::insert(payload.clone(), vs, in_ve));
                    }
                }
            }
            // Lines 26–27: fully frozen (or nonexistent) per the driving
            // stream — the node is settled and can be dropped.
            if in_ve < t {
                for (id, _) in node.entries() {
                    if let Some(c) = live_entries.get_mut(id.0 as usize) {
                        *c = c.saturating_sub(1);
                    }
                }
                SweepAction::Retire
            } else {
                SweepAction::Keep
            }
        });
        // Lines 28–29. This stream is now the leading one.
        self.leader = Some(s);
        self.max_stable = t;
        self.inputs.on_stable_advance(t);
        self.quarantine_laggards(s, t);
        self.stats.stables_out += 1;
        out.push(Element::Stable(t));
    }
}

impl<P: Payload> LogicalMerge<P> for LMergeR3<P> {
    fn push(&mut self, input: StreamId, element: &Element<P>, out: &mut Vec<Element<P>>) {
        self.per_input.on_element(input, element);
        match element {
            Element::Insert(e) => {
                self.stats.inserts_in += 1;
                if !self.inputs.accepts_data(input) {
                    return;
                }
                self.on_insert(input, e, out);
                self.enforce_entry_bound(input);
            }
            Element::Adjust {
                payload, vs, ve, ..
            } => {
                self.stats.adjusts_in += 1;
                if !self.inputs.accepts_data(input) {
                    return;
                }
                self.on_adjust(input, payload, *vs, *ve, out);
                self.enforce_entry_bound(input);
            }
            Element::Stable(t) => {
                self.stats.stables_in += 1;
                // A quarantined input announcing a stable at or past the
                // output's has caught back up — restore it before the gate.
                if *t >= self.max_stable && self.inputs.state(input) == InputState::Quarantined {
                    self.inputs.restore(input);
                }
                if !self.inputs.accepts_stable(input) {
                    return;
                }
                self.on_stable(input, *t, out);
            }
        }
    }

    fn push_batch(&mut self, input: StreamId, elements: &[Element<P>], out: &mut Vec<Element<P>>) {
        if elements.is_empty() {
            return;
        }
        let meta = BatchMeta::of(elements);
        // Punctuation-bearing batches go element-by-element: stables
        // interleave with data and per-input `last_stable` must see each one.
        if meta.has_stable() {
            for e in elements {
                self.push(input, e, out);
            }
            return;
        }
        // Data-only batch: count and gate once for the whole batch.
        self.per_input
            .on_data_batch(input, meta.inserts as u64, meta.adjusts as u64);
        self.stats.inserts_in += meta.inserts as u64;
        self.stats.adjusts_in += meta.adjusts as u64;
        if !self.inputs.accepts_data(input) {
            return;
        }
        // O(1) frozen-prefix discard (the catching-up replica of Figure 5):
        // with the whole `Vs` range below both `MaxStable` and the smallest
        // live node, every element would individually resolve to "stale, no
        // node" and be dropped — so drop the batch in one step. The bound is
        // safe against concurrent detach: `min_live_vs` is recomputed here on
        // every call (it is the smallest tier key, not a cached value), and
        // `purge_stream` only strips per-input entries — reconciled nodes
        // keep their `output_ve` and stay in their tier, so a detach between
        // batches can only *lower* the set of discardable ranges, never
        // admit a batch whose elements a per-element drive would have kept.
        if meta.max_vs < self.max_stable && self.index.min_live_vs().is_none_or(|m| meta.max_vs < m)
        {
            self.stats.dropped += meta.data() as u64;
            return;
        }
        for e in elements {
            match e {
                Element::Insert(ev) => self.on_insert(input, ev, out),
                Element::Adjust {
                    payload, vs, ve, ..
                } => self.on_adjust(input, payload, *vs, *ve, out),
                Element::Stable(_) => unreachable!("data-only batch"),
            }
        }
        self.enforce_entry_bound(input);
    }

    fn attach(&mut self, join_time: Time) -> StreamId {
        self.per_input.on_attach();
        self.inputs.attach(join_time)
    }

    fn detach(&mut self, input: StreamId) {
        self.inputs.detach(input);
        self.index.purge_stream(input);
        if let Some(c) = self.live_entries.get_mut(input.0 as usize) {
            *c = 0;
        }
    }

    fn max_stable(&self) -> Time {
        self.max_stable
    }

    fn stats(&self) -> MergeStats {
        self.stats
    }

    fn input_counters(&self) -> &[InputCounters] {
        self.per_input.counters()
    }

    fn input_health(&self, input: StreamId) -> InputHealth {
        self.inputs.state(input).into()
    }

    fn health_transitions(&self) -> crate::inputs::HealthTransitions {
        self.inputs.transitions()
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.index.memory_bytes()
            + self.inputs.memory_bytes()
            + self.per_input.memory_bytes()
    }

    fn level(&self) -> RLevel {
        RLevel::R3
    }

    fn export_state(&self) -> Option<crate::state::MergeStateImage<P>> {
        let mut img = crate::state::MergeStateImage::with_common(
            crate::state::VariantKind::R3,
            &self.inputs,
            &self.per_input,
            self.stats,
        );
        img.max_stable = self.max_stable;
        img.leader = self.leader.map(|s| s.0);
        img.live_entries = self.live_entries.clone();
        img.entries = self
            .index
            .iter_all()
            .map(|(vs, payload, node)| {
                let mut per_input: Vec<(u32, Vec<(Time, u64)>)> =
                    node.entries().map(|(s, ve)| (s.0, vec![(ve, 1)])).collect();
                per_input.sort_by_key(|e| e.0);
                crate::state::StateEntry {
                    vs,
                    payload: payload.clone(),
                    per_input,
                    output: node.output_ve.map(|v| vec![(v, 1)]).unwrap_or_default(),
                }
            })
            .collect();
        Some(img)
    }

    fn restore_state(&mut self, image: crate::state::MergeStateImage<P>) -> bool {
        if image.kind != crate::state::VariantKind::R3 {
            return false;
        }
        self.stats = image.apply_common(&mut self.inputs, &mut self.per_input);
        self.max_stable = image.max_stable;
        self.leader = image.leader.map(StreamId);
        self.live_entries = image.live_entries.clone();
        self.index = In2t::new();
        for entry in &image.entries {
            let per_input: Vec<(u32, Time)> = entry
                .per_input
                .iter()
                .filter_map(|(id, m)| m.first().map(|&(ve, _)| (*id, ve)))
                .collect();
            let output_ve = entry.output.first().map(|&(ve, _)| ve);
            self.index
                .restore_node(entry.vs, entry.payload.clone(), &per_input, output_ve);
        }
        true
    }

    fn set_spill_handler(&mut self, handler: Box<dyn crate::state::SpillHandler<P>>) {
        self.spill.0 = Some(handler);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_temporal::reconstitute::tdb_of;

    type E = Element<&'static str>;

    #[test]
    fn first_insert_wins_divergent_ends_reconciled_on_stable() {
        let mut lm = LMergeR3::new(2);
        let mut out = Vec::new();
        // Input 0 believes A ends at 7; input 1 knows it ends at 12.
        lm.push(StreamId(0), &E::insert("A", 6, 7), &mut out);
        lm.push(StreamId(1), &E::insert("A", 6, 12), &mut out);
        assert_eq!(out, vec![E::insert("A", 6, 7)], "first presentation flows");
        // Input 1 drives progress; output must be corrected to 12 before
        // the stable freezes it at 7.
        lm.push(StreamId(1), &E::stable(20), &mut out);
        assert_eq!(
            out[1..],
            [E::adjust("A", 6, 7, 12), E::stable(20)],
            "divergence fixed exactly when it would freeze"
        );
        let tdb = tdb_of(&out).unwrap();
        assert_eq!(tdb.count(&"A", Time(6), Time(12)), 1);
    }

    #[test]
    fn adjusts_are_absorbed_lazily() {
        let mut lm = LMergeR3::new(1);
        let mut out = Vec::new();
        lm.push(StreamId(0), &E::insert("A", 6, 20), &mut out);
        lm.push(StreamId(0), &E::adjust("A", 6, 20, 30), &mut out);
        lm.push(StreamId(0), &E::adjust("A", 6, 30, 25), &mut out);
        assert_eq!(out.len(), 1, "no chatty intermediate adjusts");
        lm.push(StreamId(0), &E::stable(40), &mut out);
        // One corrective adjust to the final value, then the stable.
        assert_eq!(out[1..], [E::adjust("A", 6, 20, 25), E::stable(40)]);
    }

    #[test]
    fn eager_policy_reflects_adjusts() {
        let mut lm = LMergeR3::with_policy(1, MergePolicy::eager());
        let mut out = Vec::new();
        lm.push(StreamId(0), &E::insert("A", 6, 20), &mut out);
        lm.push(StreamId(0), &E::adjust("A", 6, 20, 30), &mut out);
        assert_eq!(out[1], E::adjust("A", 6, 20, 30));
    }

    #[test]
    fn missing_event_in_driving_stream_is_deleted() {
        let mut lm = LMergeR3::new(2);
        let mut out = Vec::new();
        // Input 0 produced a spurious unfrozen event input 1 never saw.
        lm.push(StreamId(0), &E::insert("X", 5, 9), &mut out);
        lm.push(StreamId(1), &E::stable(10), &mut out);
        // The output deletes X (adjust to Ve = Vs) before freezing past it.
        assert_eq!(
            out[1..],
            [E::adjust("X", 5, 9, 5), E::stable(10)],
            "event cancelled when progress-driving stream lacks it"
        );
        assert!(tdb_of(&out).unwrap().is_empty());
    }

    #[test]
    fn stale_insert_after_freeze_is_dropped() {
        let mut lm = LMergeR3::new(2);
        let mut out = Vec::new();
        lm.push(StreamId(0), &E::insert("A", 5, 8), &mut out);
        lm.push(StreamId(0), &E::stable(10), &mut out);
        out.clear();
        // Input 1 lags and replays A — already settled.
        lm.push(StreamId(1), &E::insert("A", 5, 8), &mut out);
        assert!(out.is_empty());
        assert_eq!(lm.stats().dropped, 1);
    }

    #[test]
    fn wait_half_frozen_policy_defers_output() {
        let mut lm = LMergeR3::with_policy(1, MergePolicy::conservative());
        let mut out = Vec::new();
        lm.push(StreamId(0), &E::insert("A", 6, 20), &mut out);
        assert!(out.is_empty(), "conservative: nothing until half frozen");
        lm.push(StreamId(0), &E::stable(10), &mut out);
        assert_eq!(out, vec![E::insert("A", 6, 20), E::stable(10)]);
    }

    #[test]
    fn quorum_policy_waits_for_agreement() {
        let mut lm = LMergeR3::with_policy(
            3,
            MergePolicy {
                insert: InsertPolicy::Quorum(2),
                ..Default::default()
            },
        );
        let mut out = Vec::new();
        lm.push(StreamId(0), &E::insert("A", 6, 20), &mut out);
        assert!(out.is_empty());
        lm.push(StreamId(1), &E::insert("A", 6, 20), &mut out);
        assert_eq!(out, vec![E::insert("A", 6, 20)], "second input confirms");
    }

    #[test]
    fn theorem1_non_chattiness() {
        // Torture the operator with adjust-heavy inputs; Theorem 1's bound
        // (outputs ≤ inserts received; stables out ≤ stables in) must hold.
        let mut lm = LMergeR3::new(2);
        let mut out = Vec::new();
        for i in 0..100i64 {
            for s in 0..2u32 {
                lm.push(StreamId(s), &E::insert("k", i, i + 10), &mut out);
                lm.push(StreamId(s), &E::adjust("k", i, i + 10, i + 5), &mut out);
                lm.push(StreamId(s), &E::adjust("k", i, i + 5, i + 8), &mut out);
            }
            lm.push(StreamId(0), &E::stable(i), &mut out);
        }
        assert!(lm.stats().satisfies_theorem1(), "{:?}", lm.stats());
    }

    #[test]
    fn nodes_are_freed_when_fully_frozen() {
        let mut lm = LMergeR3::new(1);
        let mut out = Vec::new();
        for i in 0..50i64 {
            lm.push(StreamId(0), &E::insert("k", i, i + 1), &mut out);
        }
        assert_eq!(lm.live_nodes(), 50);
        lm.push(StreamId(0), &E::stable(100), &mut out);
        assert_eq!(lm.live_nodes(), 0, "everything fully frozen and purged");
    }

    #[test]
    fn detach_purges_stream_state() {
        let mut lm = LMergeR3::new(2);
        let mut out = Vec::new();
        lm.push(StreamId(0), &E::insert("A", 6, 7), &mut out);
        lm.push(StreamId(1), &E::insert("A", 6, 12), &mut out);
        lm.detach(StreamId(0));
        // Stream 1 now drives everything; its view (12) wins at freeze time.
        lm.push(StreamId(1), &E::stable(20), &mut out);
        let tdb = tdb_of(&out).unwrap();
        assert_eq!(tdb.count(&"A", Time(6), Time(12)), 1);
    }

    #[test]
    fn output_reconstitutes_to_input_tdb() {
        // Phy1/Phy2 of Table I (translated to the StreamInsight model).
        let phy1: Vec<E> = vec![
            E::insert("B", 8, Time::INFINITY),
            E::insert("A", 6, 12),
            E::adjust("B", 8, Time::INFINITY, Time(10)),
            E::stable(11),
            E::stable(Time::INFINITY),
        ];
        let phy2: Vec<E> = vec![
            E::insert("A", 6, 7),
            E::insert("B", 8, 15),
            E::adjust("A", 6, 7, 12),
            E::adjust("B", 8, 15, 10),
            E::stable(Time::INFINITY),
        ];
        let mut lm = LMergeR3::new(2);
        let mut out = Vec::new();
        // Interleave the two physical streams.
        let mut i1 = phy1.iter();
        let mut i2 = phy2.iter();
        loop {
            match (i1.next(), i2.next()) {
                (None, None) => break,
                (a, b) => {
                    if let Some(e) = a {
                        lm.push(StreamId(0), e, &mut out);
                    }
                    if let Some(e) = b {
                        lm.push(StreamId(1), e, &mut out);
                    }
                }
            }
        }
        let tdb = tdb_of(&out).unwrap();
        assert_eq!(tdb.count(&"A", Time(6), Time(12)), 1);
        assert_eq!(tdb.count(&"B", Time(8), Time(10)), 1);
        assert_eq!(tdb.len(), 2);
    }
}

#[cfg(test)]
mod follow_leader_tests {
    use super::*;
    use lmerge_temporal::reconstitute::tdb_of;

    type E = Element<&'static str>;

    #[test]
    fn only_leader_drives_output() {
        let mut lm = LMergeR3::with_policy(
            2,
            MergePolicy {
                insert: InsertPolicy::FollowLeader,
                ..Default::default()
            },
        );
        let mut out = Vec::new();
        // Stream 1 establishes itself as the leader.
        lm.push(StreamId(1), &E::insert("A", 1, 9), &mut out);
        lm.push(StreamId(1), &E::stable(2), &mut out);
        out.clear();
        // A follower's new event is recorded but not emitted …
        lm.push(StreamId(0), &E::insert("B", 5, 12), &mut out);
        assert!(out.is_empty(), "follower must not drive output");
        // … until the leader produces it.
        lm.push(StreamId(1), &E::insert("B", 5, 12), &mut out);
        assert_eq!(out, vec![E::insert("B", 5, 12)]);
    }

    #[test]
    fn leadership_moves_with_the_stable_frontier() {
        let mut lm: LMergeR3<&str> = LMergeR3::with_policy(
            2,
            MergePolicy {
                insert: InsertPolicy::FollowLeader,
                ..Default::default()
            },
        );
        let mut out = Vec::new();
        lm.push(StreamId(0), &E::stable(5), &mut out);
        lm.push(StreamId(1), &E::stable(10), &mut out);
        out.clear();
        // Stream 1 leads now.
        lm.push(StreamId(0), &E::insert("X", 20, 30), &mut out);
        assert!(out.is_empty());
        lm.push(StreamId(1), &E::insert("Y", 21, 31), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn follower_only_events_recovered_at_freeze() {
        let mut lm: LMergeR3<&str> = LMergeR3::with_policy(
            2,
            MergePolicy {
                insert: InsertPolicy::FollowLeader,
                ..Default::default()
            },
        );
        let mut out = Vec::new();
        lm.push(StreamId(1), &E::stable(1), &mut out);
        // Only the follower carries A before the freeze …
        lm.push(StreamId(0), &E::insert("A", 2, 4), &mut out);
        // … and the follower then becomes the one driving progress.
        lm.push(StreamId(0), &E::stable(10), &mut out);
        let tdb = tdb_of(&out).unwrap();
        assert_eq!(tdb.count(&"A", Time(2), Time(4)), 1, "A must not be lost");
    }
}

#[cfg(test)]
mod robustness_tests {
    use super::*;

    type E = Element<&'static str>;

    #[test]
    fn quarantine_demotes_and_restores_a_stalled_input() {
        use crate::api::InputHealth;
        use crate::policy::RobustnessPolicy;
        let mut lm: LMergeR3<&str> = LMergeR3::with_policy(
            2,
            MergePolicy {
                robustness: RobustnessPolicy {
                    quarantine_lag: Some(5),
                    max_live_entries: None,
                },
                ..Default::default()
            },
        );
        let mut out = Vec::new();
        lm.push(StreamId(1), &E::stable(1), &mut out);
        lm.push(StreamId(0), &E::stable(10), &mut out);
        assert_eq!(
            lm.input_health(StreamId(1)),
            InputHealth::Quarantined,
            "stable 1 trails 10 by more than the 5-unit margin"
        );
        out.clear();
        // Behind-the-frontier punctuation from quarantine stays ignored …
        lm.push(StreamId(1), &E::stable(4), &mut out);
        assert!(out.is_empty());
        assert_eq!(lm.input_health(StreamId(1)), InputHealth::Quarantined);
        // … but its data still merges.
        lm.push(StreamId(1), &E::insert("A", 20, 30), &mut out);
        assert_eq!(out, vec![E::insert("A", 20, 30)]);
        // Catching up to the output stable restores it.
        out.clear();
        lm.push(StreamId(1), &E::stable(12), &mut out);
        assert_eq!(lm.input_health(StreamId(1)), InputHealth::Active);
        assert_eq!(lm.max_stable(), Time(12));
    }

    #[test]
    fn entry_bound_demotes_a_flooding_input() {
        use crate::api::InputHealth;
        use crate::policy::RobustnessPolicy;
        let mut lm: LMergeR3<&str> = LMergeR3::with_policy(
            2,
            MergePolicy {
                robustness: RobustnessPolicy {
                    quarantine_lag: None,
                    max_live_entries: Some(10),
                },
                ..Default::default()
            },
        );
        let mut out = Vec::new();
        for i in 0..20i64 {
            lm.push(StreamId(1), &E::insert("k", i, i + 100), &mut out);
        }
        assert_eq!(lm.input_health(StreamId(1)), InputHealth::Left);
        assert_eq!(lm.live_entries(StreamId(1)), 0, "state released");
        assert_eq!(lm.input_health(StreamId(0)), InputHealth::Active);
        // The surviving input still drives output.
        out.clear();
        lm.push(StreamId(0), &E::insert("x", 500, 600), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn live_entry_counters_follow_sweep_retirement() {
        let mut lm: LMergeR3<&str> = LMergeR3::new(1);
        let mut out = Vec::new();
        for i in 0..5i64 {
            lm.push(StreamId(0), &E::insert("k", i, i + 1), &mut out);
        }
        assert_eq!(lm.live_entries(StreamId(0)), 5);
        lm.push(StreamId(0), &E::stable(100), &mut out);
        assert_eq!(lm.live_entries(StreamId(0)), 0, "retired with the nodes");
    }
}
