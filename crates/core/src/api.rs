//! The common interface of every LMerge variant.

use crate::stats::{InputCounters, MergeStats};
use lmerge_properties::RLevel;
use lmerge_temporal::{Element, Payload, StreamId, Time};

/// Per-batch summary computed in one pass: element-kind counts and the
/// `Vs` range of the data elements. Producers (the engine's `Query`)
/// compute it once per batch; consumers use it to hoist per-batch
/// invariants out of the per-element loop — most importantly the O(1)
/// frozen-prefix discard of [`LogicalMerge::push_batch`]: a batch with no
/// punctuation whose `max_vs` lies below both the operator's `MaxStable`
/// and the index's smallest live `Vs` can be dropped whole, since every
/// element would individually resolve to "stale, no node".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchMeta {
    /// Insert elements in the batch.
    pub inserts: u32,
    /// Adjust elements in the batch.
    pub adjusts: u32,
    /// Stable (punctuation) elements in the batch.
    pub stables: u32,
    /// Smallest `Vs` among data elements (`Time::INFINITY` if none).
    pub min_vs: Time,
    /// Largest `Vs` among data elements (`Time::MIN` if none).
    pub max_vs: Time,
}

impl Default for BatchMeta {
    fn default() -> BatchMeta {
        BatchMeta {
            inserts: 0,
            adjusts: 0,
            stables: 0,
            min_vs: Time::INFINITY,
            max_vs: Time::MIN,
        }
    }
}

impl BatchMeta {
    /// Summarize a batch in a single pass.
    pub fn of<P: Payload>(elements: &[Element<P>]) -> BatchMeta {
        let mut meta = BatchMeta::default();
        for e in elements {
            match e {
                Element::Insert(ev) => {
                    meta.inserts += 1;
                    meta.min_vs = meta.min_vs.min(ev.vs);
                    meta.max_vs = meta.max_vs.max(ev.vs);
                }
                Element::Adjust { vs, .. } => {
                    meta.adjusts += 1;
                    meta.min_vs = meta.min_vs.min(*vs);
                    meta.max_vs = meta.max_vs.max(*vs);
                }
                Element::Stable(_) => meta.stables += 1,
            }
        }
        meta
    }

    /// Data (insert + adjust) elements in the batch.
    pub fn data(&self) -> u32 {
        self.inserts + self.adjusts
    }

    /// Whether the batch carries punctuation.
    pub fn has_stable(&self) -> bool {
        self.stables > 0
    }
}

/// Externally visible lifecycle/robustness state of one input: a stable
/// vocabulary the engine can trace without depending on operator
/// internals. Mirrors the variants of `inputs::InputState`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputHealth {
    /// Attached and fully trusted.
    Active,
    /// Attached; data usable, punctuation gated until its join time is
    /// covered by the output stable point.
    Joining,
    /// Demoted by a robustness policy: data merges, punctuation ignored
    /// until the input catches back up.
    Quarantined,
    /// Detached — left cleanly, crashed, or demoted past recovery.
    Left,
}

/// A Logical Merge operator: `n` physically divergent, logically consistent
/// inputs in, one compatible stream out.
///
/// Implementations are synchronous state machines: [`push`](Self::push) one
/// element from one input, and any resulting output elements are appended to
/// the caller's vector. This keeps the algorithms engine-agnostic and makes
/// their behaviour exactly reproducible.
pub trait LogicalMerge<P: Payload> {
    /// Feed one element from input `input`; output elements are appended to
    /// `out`. Elements from detached inputs are ignored.
    fn push(&mut self, input: StreamId, element: &Element<P>, out: &mut Vec<Element<P>>);

    /// Feed a whole batch from input `input`. Semantically identical to
    /// pushing each element in order (the default does exactly that), but
    /// implementations override it to pay per-batch rather than per-element
    /// costs: one dynamic dispatch, hoisted input gating, and — for the
    /// indexed variants — an O(1) discard of batches from lagging inputs
    /// whose entire `Vs` range is already settled (the catching-up-replica
    /// scenario behind the paper's Figure 5).
    fn push_batch(&mut self, input: StreamId, elements: &[Element<P>], out: &mut Vec<Element<P>>) {
        for e in elements {
            self.push(input, e, out);
        }
    }

    /// Attach a new input stream that is guaranteed correct for every event
    /// with `Ve ≥ join_time` (Section V-B). Returns its id. Pass
    /// [`Time::MIN`] for a stream attached from the logical beginning.
    fn attach(&mut self, join_time: Time) -> StreamId;

    /// Detach (mark as left) an input stream. Its per-stream state is
    /// released and its future elements ignored.
    fn detach(&mut self, input: StreamId);

    /// The operator's current output stable point (`MaxStable`).
    fn max_stable(&self) -> Time;

    /// The feedback signal of Section V-D: upstream producers may skip any
    /// element whose entire relevance lies before this application time.
    /// For the ordered variants this is the high-water `Vs`; for R3/R4 it is
    /// the stable point.
    fn feedback_point(&self) -> Time {
        self.max_stable()
    }

    /// Element counters (drives the chattiness metric and Theorem 1 tests).
    fn stats(&self) -> MergeStats;

    /// Per-input delivery counters, indexed by stream id: what each replica
    /// pushed and the latest stable point it announced. Backs the per-input
    /// lag diagnostics of Section V-D. Implementations that don't track
    /// per-input detail may return an empty slice.
    fn input_counters(&self) -> &[InputCounters] {
        &[]
    }

    /// The latest stable point announced by `input` (`Time::MIN` before any
    /// announcement or for unknown ids).
    fn input_stable(&self, input: StreamId) -> Time {
        self.input_counters()
            .get(input.0 as usize)
            .map_or(Time::MIN, |c| c.last_stable)
    }

    /// Lifecycle/robustness state of `input` as seen by the operator. The
    /// default reports every id as `Active`; variants with an input
    /// registry override it so the engine can trace health transitions
    /// (quarantine, demotion, joins, crashes).
    fn input_health(&self, input: StreamId) -> InputHealth {
        let _ = input;
        InputHealth::Active
    }

    /// Lifetime health-transition counts (quarantines by a robustness
    /// policy, restores, departures) across all inputs — the core-side
    /// hook the live telemetry plane exports. The default reports zeros;
    /// variants with an input registry override it.
    fn health_transitions(&self) -> crate::inputs::HealthTransitions {
        crate::inputs::HealthTransitions::default()
    }

    /// Estimated operator memory: index structures plus retained payload
    /// bytes (the metric of the paper's Figures 2, 6, and 7).
    fn memory_bytes(&self) -> usize;

    /// Which case of the paper's restriction spectrum this operator handles.
    fn level(&self) -> RLevel;

    /// Export a canonical image of the operator's state for checkpointing.
    /// Variants that support durability override this; the default reports
    /// "not supported" so exotic operators keep working unchanged.
    fn export_state(&self) -> Option<crate::state::MergeStateImage<P>> {
        None
    }

    /// Rebuild the operator's state from an image previously produced by
    /// [`export_state`](Self::export_state) on a *freshly constructed*
    /// operator of the same variant and configuration (policies are not
    /// part of the image). Returns `false` — leaving the operator
    /// untouched — if the image's variant kind does not match or the
    /// operator does not support restore.
    fn restore_state(&mut self, image: crate::state::MergeStateImage<P>) -> bool {
        let _ = image;
        false
    }

    /// Install a spill handler: where `max_live_entries` demotions send
    /// their half-frozen state instead of dropping it. Only the indexed
    /// variants (R3/R4) accept one; the default ignores the handler.
    fn set_spill_handler(&mut self, handler: Box<dyn crate::state::SpillHandler<P>>) {
        let _ = handler;
    }
}
