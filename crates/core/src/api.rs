//! The common interface of every LMerge variant.

use crate::stats::{InputCounters, MergeStats};
use lmerge_properties::RLevel;
use lmerge_temporal::{Element, Payload, StreamId, Time};

/// A Logical Merge operator: `n` physically divergent, logically consistent
/// inputs in, one compatible stream out.
///
/// Implementations are synchronous state machines: [`push`](Self::push) one
/// element from one input, and any resulting output elements are appended to
/// the caller's vector. This keeps the algorithms engine-agnostic and makes
/// their behaviour exactly reproducible.
pub trait LogicalMerge<P: Payload> {
    /// Feed one element from input `input`; output elements are appended to
    /// `out`. Elements from detached inputs are ignored.
    fn push(&mut self, input: StreamId, element: &Element<P>, out: &mut Vec<Element<P>>);

    /// Attach a new input stream that is guaranteed correct for every event
    /// with `Ve ≥ join_time` (Section V-B). Returns its id. Pass
    /// [`Time::MIN`] for a stream attached from the logical beginning.
    fn attach(&mut self, join_time: Time) -> StreamId;

    /// Detach (mark as left) an input stream. Its per-stream state is
    /// released and its future elements ignored.
    fn detach(&mut self, input: StreamId);

    /// The operator's current output stable point (`MaxStable`).
    fn max_stable(&self) -> Time;

    /// The feedback signal of Section V-D: upstream producers may skip any
    /// element whose entire relevance lies before this application time.
    /// For the ordered variants this is the high-water `Vs`; for R3/R4 it is
    /// the stable point.
    fn feedback_point(&self) -> Time {
        self.max_stable()
    }

    /// Element counters (drives the chattiness metric and Theorem 1 tests).
    fn stats(&self) -> MergeStats;

    /// Per-input delivery counters, indexed by stream id: what each replica
    /// pushed and the latest stable point it announced. Backs the per-input
    /// lag diagnostics of Section V-D. Implementations that don't track
    /// per-input detail may return an empty slice.
    fn input_counters(&self) -> &[InputCounters] {
        &[]
    }

    /// The latest stable point announced by `input` (`Time::MIN` before any
    /// announcement or for unknown ids).
    fn input_stable(&self, input: StreamId) -> Time {
        self.input_counters()
            .get(input.0 as usize)
            .map_or(Time::MIN, |c| c.last_stable)
    }

    /// Estimated operator memory: index structures plus retained payload
    /// bytes (the metric of the paper's Figures 2, 6, and 7).
    fn memory_bytes(&self) -> usize;

    /// Which case of the paper's restriction spectrum this operator handles.
    fn level(&self) -> RLevel;
}
