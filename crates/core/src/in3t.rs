//! The `in3t` (index-3-tier) data structure of Figure 1 (right).
//!
//! R4 permits several events with the same `(Vs, Payload)` and different
//! `Ve`s, plus exact duplicates. `in3t` therefore replaces `in2t`'s single
//! `Ve` per stream with a small ordered map `Ve → count` per stream (the
//! paper uses a red-black tree with counts).
//!
//! Like `in2t`, every tier is an *ordered* map so that iteration is a pure
//! function of the index's contents — the restorable-iteration property
//! the durability layer's byte-identical recovery depends on.

use crate::in2t::SweepAction;
use crate::mem::btree_bytes;
use lmerge_temporal::{Payload, StreamId, Time};
use std::collections::BTreeMap;

/// `Ve → multiplicity` for one stream at one `(Vs, Payload)`.
pub type VeCounts = BTreeMap<Time, usize>;

/// Per-key node: shared payload, per-stream `Ve` multisets, output multiset.
#[derive(Clone, Debug, Default)]
pub struct Node {
    /// Each input stream's live `Ve` multiset.
    pub per_input: BTreeMap<u32, VeCounts>,
    /// The output's live `Ve` multiset (the "special key ∞" entry).
    pub output: VeCounts,
}

impl Node {
    /// Total event count for stream `s` at this key (`GetCount(s)`).
    pub fn count_of(&self, s: StreamId) -> usize {
        self.per_input
            .get(&s.0)
            .map(|m| m.values().sum())
            .unwrap_or(0)
    }

    /// Total output event count at this key (`GetCount(∞)`).
    pub fn count_out(&self) -> usize {
        self.output.values().sum()
    }

    /// Largest live `Ve` for stream `s` (`GetMaxVe(s)`), if any.
    pub fn max_ve(&self, s: StreamId) -> Option<Time> {
        self.per_input
            .get(&s.0)
            .and_then(|m| m.keys().next_back().copied())
    }

    /// Add one occurrence of `ve` for stream `s` (`IncrementCount`).
    pub fn increment(&mut self, s: StreamId, ve: Time) {
        *self
            .per_input
            .entry(s.0)
            .or_default()
            .entry(ve)
            .or_insert(0) += 1;
    }

    /// Remove one occurrence of `ve` for stream `s` (`DecrementCount`).
    /// Returns false if no such occurrence was recorded (stale element).
    pub fn decrement(&mut self, s: StreamId, ve: Time) -> bool {
        let Some(m) = self.per_input.get_mut(&s.0) else {
            return false;
        };
        match m.get_mut(&ve) {
            Some(c) if *c > 0 => {
                *c -= 1;
                if *c == 0 {
                    m.remove(&ve);
                }
                true
            }
            _ => false,
        }
    }

    /// Add one output occurrence of `ve`.
    pub fn out_increment(&mut self, ve: Time) {
        *self.output.entry(ve).or_insert(0) += 1;
    }

    /// Remove one output occurrence of `ve`. Returns false when absent.
    pub fn out_decrement(&mut self, ve: Time) -> bool {
        match self.output.get_mut(&ve) {
            Some(c) if *c > 0 => {
                *c -= 1;
                if *c == 0 {
                    self.output.remove(&ve);
                }
                true
            }
            _ => false,
        }
    }
}

/// The three-tier index: `Vs → (Payload → Node)`, nodes holding `Ve` trees.
#[derive(Debug, Default)]
pub struct In3t<P: Payload> {
    tiers: BTreeMap<Time, BTreeMap<P, Node>>,
    nodes: usize,
    payload_bytes: usize,
}

impl<P: Payload> In3t<P> {
    /// An empty index.
    pub fn new() -> In3t<P> {
        In3t {
            tiers: BTreeMap::new(),
            nodes: 0,
            payload_bytes: 0,
        }
    }

    /// Number of live `(Vs, Payload)` nodes.
    pub fn len(&self) -> usize {
        self.nodes
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes == 0
    }

    /// Look up the node for `(vs, payload)`.
    pub fn get(&self, vs: Time, payload: &P) -> Option<&Node> {
        self.tiers.get(&vs).and_then(|m| m.get(payload))
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, vs: Time, payload: &P) -> Option<&mut Node> {
        self.tiers.get_mut(&vs).and_then(|m| m.get_mut(payload))
    }

    /// Get-or-create the node for `(vs, payload)`.
    pub fn entry(&mut self, vs: Time, payload: &P) -> &mut Node {
        let m = self.tiers.entry(vs).or_default();
        if !m.contains_key(payload) {
            self.nodes += 1;
            self.payload_bytes += payload.heap_bytes();
        }
        m.entry(payload.clone()).or_default()
    }

    /// Remove the node for `(vs, payload)`.
    pub fn remove(&mut self, vs: Time, payload: &P) {
        if let Some(m) = self.tiers.get_mut(&vs) {
            if m.remove(payload).is_some() {
                self.nodes -= 1;
                self.payload_bytes -= payload.heap_bytes();
            }
            if m.is_empty() {
                self.tiers.remove(&vs);
            }
        }
    }

    /// Keys of all nodes with `Vs < t`, cloned for safe mutation.
    ///
    /// Prefer [`In3t::sweep_half_frozen`] on hot paths: this form clones
    /// every payload below `t`. Retained for tests and diagnostics.
    pub fn half_frozen_keys(&self, t: Time) -> Vec<(Time, P)> {
        self.tiers
            .range(..t)
            .flat_map(|(vs, m)| m.keys().map(move |p| (*vs, p.clone())))
            .collect()
    }

    /// Visit every node with `Vs < t` exactly once, in `Vs` order, with
    /// mutable access; nodes the visitor retires are unlinked during the
    /// walk. The allocation-free replacement for
    /// [`In3t::half_frozen_keys`] + per-key re-lookup.
    pub fn sweep_half_frozen<F>(&mut self, t: Time, mut visit: F)
    where
        F: FnMut(Time, &P, &mut Node) -> SweepAction,
    {
        let In3t {
            tiers,
            nodes,
            payload_bytes,
        } = self;
        let mut emptied = false;
        for (vs, tier) in tiers.range_mut(..t) {
            tier.retain(|payload, node| match visit(*vs, payload, node) {
                SweepAction::Keep => true,
                SweepAction::Retire => {
                    *nodes -= 1;
                    *payload_bytes -= payload.heap_bytes();
                    false
                }
            });
            emptied |= tier.is_empty();
        }
        if emptied {
            tiers.retain(|_, m| !m.is_empty());
        }
    }

    /// The smallest live `Vs` in the index, if any (batch-discard bound).
    pub fn min_live_vs(&self) -> Option<Time> {
        self.tiers.keys().next().copied()
    }

    /// Drop all state belonging to stream `s` (detach).
    pub fn purge_stream(&mut self, s: StreamId) {
        for m in self.tiers.values_mut() {
            for node in m.values_mut() {
                node.per_input.remove(&s.0);
            }
        }
    }

    /// Iterate every node in canonical `(Vs, payload)` order — the
    /// checkpoint export walk, including nodes at `Vs = ∞`.
    pub fn iter_all(&self) -> impl Iterator<Item = (Time, &P, &Node)> + '_ {
        self.tiers
            .iter()
            .flat_map(|(vs, m)| m.iter().map(move |(p, n)| (*vs, p, n)))
    }

    /// Estimated memory: tree structure, the per-`Vs` payload tiers and
    /// each node's per-stream tree (modelled by [`btree_bytes`] so the
    /// figure is a pure function of the contents), shared payloads, and
    /// per-stream `Ve` tree entries.
    pub fn memory_bytes(&self) -> usize {
        const TIER_OVERHEAD: usize = 48;
        const VE_ENTRY: usize = std::mem::size_of::<(Time, usize)>() + 16;
        let mut entries = 0usize;
        let mut tables = 0usize;
        for m in self.tiers.values() {
            tables += btree_bytes(m.len(), std::mem::size_of::<(P, Node)>());
            for node in m.values() {
                tables += btree_bytes(node.per_input.len(), std::mem::size_of::<(u32, VeCounts)>());
                entries += node.output.len();
                entries += node.per_input.values().map(BTreeMap::len).sum::<usize>();
            }
        }
        self.tiers.len() * TIER_OVERHEAD + tables + self.payload_bytes + entries * VE_ENTRY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_max_ve() {
        let mut ix: In3t<&str> = In3t::new();
        let n = ix.entry(Time(1), &"A");
        n.increment(StreamId(0), Time(5));
        n.increment(StreamId(0), Time(5));
        n.increment(StreamId(0), Time(9));
        assert_eq!(n.count_of(StreamId(0)), 3);
        assert_eq!(n.max_ve(StreamId(0)), Some(Time(9)));
        assert!(n.decrement(StreamId(0), Time(9)));
        assert_eq!(n.max_ve(StreamId(0)), Some(Time(5)));
        assert!(!n.decrement(StreamId(0), Time(9)), "already gone");
    }

    #[test]
    fn entry_is_idempotent_on_node_count() {
        let mut ix: In3t<&str> = In3t::new();
        ix.entry(Time(1), &"A");
        ix.entry(Time(1), &"A");
        assert_eq!(ix.len(), 1);
        ix.remove(Time(1), &"A");
        assert!(ix.is_empty());
    }

    #[test]
    fn output_multiset() {
        let mut ix: In3t<&str> = In3t::new();
        let n = ix.entry(Time(1), &"A");
        n.out_increment(Time(5));
        n.out_increment(Time(5));
        assert_eq!(n.count_out(), 2);
        assert!(n.out_decrement(Time(5)));
        assert_eq!(n.count_out(), 1);
        assert!(!n.out_decrement(Time(7)));
    }

    #[test]
    fn half_frozen_scan() {
        let mut ix: In3t<&str> = In3t::new();
        ix.entry(Time(1), &"A");
        ix.entry(Time(8), &"B");
        assert_eq!(ix.half_frozen_keys(Time(5)), vec![(Time(1), "A")]);
    }

    #[test]
    fn sweep_retires_in_place_with_bookkeeping() {
        let mut ix: In3t<&str> = In3t::new();
        ix.entry(Time(1), &"A").increment(StreamId(0), Time(3));
        ix.entry(Time(5), &"B").increment(StreamId(0), Time(90));
        ix.entry(Time(9), &"C");
        let mut seen = Vec::new();
        ix.sweep_half_frozen(Time(6), |vs, p, node| {
            seen.push((vs, *p));
            if node.max_ve(StreamId(0)).is_none_or(|m| m < Time(6)) {
                SweepAction::Retire
            } else {
                SweepAction::Keep
            }
        });
        assert_eq!(seen, vec![(Time(1), "A"), (Time(5), "B")]);
        assert_eq!(ix.len(), 2, "A retired, B and C live");
        assert!(ix.get(Time(1), &"A").is_none());
        assert_eq!(ix.min_live_vs(), Some(Time(5)));
    }

    #[test]
    fn memory_accounts_for_tier_trees() {
        use crate::mem::btree_bytes;
        let mut ix: In3t<&'static str> = In3t::new();
        let n = ix.entry(Time(1), &"A");
        n.increment(StreamId(0), Time(5));
        n.increment(StreamId(1), Time(6));
        n.out_increment(Time(5));
        // One tier map (1 node), one per-input map (2 streams), three Ve
        // entries (two input, one output) — pinned exactly.
        let expected = 48
            + btree_bytes(1, std::mem::size_of::<(&str, Node)>())
            + btree_bytes(2, std::mem::size_of::<(u32, VeCounts)>())
            + 3 * (std::mem::size_of::<(Time, usize)>() + 16);
        assert_eq!(ix.memory_bytes(), expected);
    }

    #[test]
    fn iter_all_walks_canonical_order_and_supports_rebuild() {
        let mut ix: In3t<&'static str> = In3t::new();
        ix.entry(Time(5), &"B").increment(StreamId(1), Time(9));
        let n = ix.entry(Time(1), &"A");
        n.increment(StreamId(0), Time(5));
        n.increment(StreamId(0), Time(5));
        n.out_increment(Time(5));

        let mut back: In3t<&'static str> = In3t::new();
        for (vs, p, node) in ix.iter_all() {
            let restored = back.entry(vs, p);
            restored.per_input = node.per_input.clone();
            restored.output = node.output.clone();
        }
        assert_eq!(back.len(), ix.len());
        assert_eq!(back.memory_bytes(), ix.memory_bytes());
        let a: Vec<_> = ix.iter_all().map(|(vs, p, _)| (vs, *p)).collect();
        assert_eq!(a, vec![(Time(1), "A"), (Time(5), "B")]);
        let b: Vec<_> = back.iter_all().map(|(vs, p, _)| (vs, *p)).collect();
        assert_eq!(a, b);
        assert_eq!(back.get(Time(1), &"A").unwrap().count_of(StreamId(0)), 2);
        assert_eq!(back.get(Time(1), &"A").unwrap().count_out(), 1);
    }

    #[test]
    fn purge_stream_drops_only_that_stream() {
        let mut ix: In3t<&str> = In3t::new();
        let n = ix.entry(Time(1), &"A");
        n.increment(StreamId(0), Time(5));
        n.increment(StreamId(1), Time(6));
        ix.purge_stream(StreamId(0));
        let n = ix.get(Time(1), &"A").unwrap();
        assert_eq!(n.count_of(StreamId(0)), 0);
        assert_eq!(n.count_of(StreamId(1)), 1);
    }
}
