//! The workspace's one deterministic byte hash: 64-bit FNV-1a.
//!
//! Two subsystems need a hash that is a pure function of its input bytes —
//! identical across runs, processes, machines, and the two sides of a
//! network connection:
//!
//! * **shard routing** ([`crate::shard::shard_of`]): a data element's
//!   `(Vs, Payload)` key must map to the same shard on every execution
//!   path (inline wrapper, threaded pipeline, replayed trace);
//! * **wire-frame checksums** (`lmerge-net`): every frame crossing a
//!   socket carries an FNV-1a checksum of its header and payload bytes,
//!   verified by the receiving side before the frame is trusted.
//!
//! Keeping both on one implementation (with the canonical constants pinned
//! by test vectors below) means the on-wire checksum can never silently
//! drift from the router hash: a change to either breaks the pinned tests.
//!
//! FNV-1a is not cryptographic — it detects corruption and distributes
//! keys, nothing more. That is exactly the contract both call sites need,
//! and it costs ~1 multiply per byte on the hot paths it serves.

use std::hash::Hasher;

/// The FNV-1a 64-bit offset basis (the hash of the empty input).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

/// An incremental 64-bit FNV-1a hasher.
///
/// Implements [`std::hash::Hasher`] so `Hash` types (shard keys) can feed
/// it directly; byte slices can also be folded in manually via
/// [`Fnv1a::update`] (wire checksums).
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(pub u64);

impl Fnv1a {
    /// A hasher at the canonical offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }

    /// Fold `bytes` into the running hash.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    /// The current hash value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

impl Hasher for Fnv1a {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        self.update(bytes);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a of a byte slice.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Canonical FNV-1a 64-bit test vectors (Noll's reference set). These
    /// pin the exact function: shard routing and the lmerge-net wire
    /// checksum both break loudly if the constants or the fold ever change.
    #[test]
    fn pinned_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.value(), fnv1a(b"foobar"));
    }

    #[test]
    fn hasher_trait_feeds_the_same_fold() {
        let mut h = Fnv1a::new();
        std::hash::Hasher::write(&mut h, b"a");
        assert_eq!(h.finish(), fnv1a(b"a"));
    }
}
