//! Constructing the right LMerge variant for a stream class (Section IV-G).

use crate::api::LogicalMerge;
use crate::policy::MergePolicy;
use crate::{LMergeR0, LMergeR1, LMergeR2, LMergeR3, LMergeR4};
use lmerge_properties::{select as select_level, RLevel, StreamProperties};
use lmerge_temporal::Payload;

/// Instantiate the LMerge algorithm for a given restriction level.
///
/// The `policy` applies to the R3 variant (the only one with policy
/// freedom); other levels ignore it.
pub fn new_for_level<P: Payload>(
    level: RLevel,
    n_inputs: usize,
    policy: MergePolicy,
) -> Box<dyn LogicalMerge<P>> {
    match level {
        RLevel::R0 => Box::new(LMergeR0::new(n_inputs)),
        RLevel::R1 => Box::new(LMergeR1::new(n_inputs)),
        RLevel::R2 => Box::new(LMergeR2::new(n_inputs)),
        RLevel::R3 => Box::new(LMergeR3::with_policy(n_inputs, policy)),
        RLevel::R4 => Box::new(LMergeR4::new(n_inputs)),
    }
}

/// Instantiate the cheapest sound LMerge algorithm for streams carrying the
/// given compile-time properties.
///
/// ```
/// use lmerge_core::{new_for_properties, MergePolicy};
/// use lmerge_properties::{RLevel, StreamProperties};
///
/// // Grouped aggregation over an ordered stream (paper scenario 5) → R2.
/// let lm = new_for_properties::<&str>(
///     StreamProperties::r2(),
///     4,
///     MergePolicy::paper_default(),
/// );
/// assert_eq!(lm.level(), RLevel::R2);
/// ```
pub fn new_for_properties<P: Payload>(
    props: StreamProperties,
    n_inputs: usize,
    policy: MergePolicy,
) -> Box<dyn LogicalMerge<P>> {
    new_for_level(select_level(props), n_inputs, policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_temporal::Element;
    use lmerge_temporal::StreamId;

    #[test]
    fn factory_matches_levels() {
        for level in RLevel::ALL {
            let lm = new_for_level::<&str>(level, 2, MergePolicy::default());
            assert_eq!(lm.level(), level);
        }
    }

    #[test]
    fn property_driven_construction() {
        let lm = new_for_properties::<&str>(StreamProperties::r2(), 3, MergePolicy::default());
        assert_eq!(lm.level(), RLevel::R2);
    }

    #[test]
    fn boxed_operator_is_usable() {
        let mut lm = new_for_level::<&str>(RLevel::R3, 2, MergePolicy::default());
        let mut out = Vec::new();
        lm.push(StreamId(0), &Element::insert("A", 1, 5), &mut out);
        lm.push(StreamId(0), &Element::stable(10), &mut out);
        assert_eq!(out.len(), 2);
    }
}
