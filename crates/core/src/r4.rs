//! Algorithm R4: the fully general LMerge (paper Section IV-E).
//!
//! No restrictions at all: any element kinds in any order, and the TDB is a
//! *multiset* — many events may share `(Vs, Payload)` with different (or
//! equal) `Ve`s. State is the [`In3t`] index; the reconciliation steps are
//! the paper's `AdjustOutputCount()` (equalize the number of output events
//! per key when the key first becomes half frozen) and `AdjustOutput()`
//! (make the output's fully-frozen `Ve` buckets match the progress-driving
//! input exactly before propagating a `stable`).

use crate::api::{BatchMeta, InputHealth, LogicalMerge};
use crate::in2t::SweepAction;
use crate::in3t::{In3t, Node};
use crate::inputs::{InputState, Inputs};
use crate::policy::RobustnessPolicy;
use crate::stats::{InputCounters, MergeStats, PerInput};
use lmerge_properties::RLevel;
use lmerge_temporal::{Element, Payload, StreamId, Time};

/// The R4 merge over the three-tier index.
#[derive(Debug)]
pub struct LMergeR4<P: Payload> {
    index: In3t<P>,
    max_stable: Time,
    inputs: Inputs,
    stats: MergeStats,
    per_input: PerInput,
    robustness: RobustnessPolicy,
    /// Live index entries held per input (robustness memory guard).
    live_entries: Vec<u64>,
    /// Where `max_live_entries` demotions spill their half-frozen state
    /// (none: demotion drops it, the pre-durability behaviour).
    spill: crate::state::SpillSlot<P>,
}

impl<P: Payload> LMergeR4<P> {
    /// An R4 merge over `n` initially attached inputs.
    pub fn new(n: usize) -> LMergeR4<P> {
        LMergeR4::with_robustness(n, RobustnessPolicy::off())
    }

    /// An R4 merge with runtime robustness guards (DESIGN.md §10).
    pub fn with_robustness(n: usize, robustness: RobustnessPolicy) -> LMergeR4<P> {
        LMergeR4 {
            index: In3t::new(),
            max_stable: Time::MIN,
            inputs: Inputs::new(n),
            stats: MergeStats::default(),
            per_input: PerInput::new(n),
            robustness,
            live_entries: vec![0; n],
            spill: crate::state::SpillSlot::default(),
        }
    }

    /// Number of live `(Vs, Payload)` nodes.
    pub fn live_nodes(&self) -> usize {
        self.index.len()
    }

    /// Live index entries currently attributed to `input` (feeds the
    /// robustness memory guard; exposed for tests and diagnostics).
    pub fn live_entries(&self, input: StreamId) -> u64 {
        self.live_entries
            .get(input.0 as usize)
            .copied()
            .unwrap_or(0)
    }

    fn note_live_entry(&mut self, s: StreamId) {
        let i = s.0 as usize;
        if i >= self.live_entries.len() {
            self.live_entries.resize(i + 1, 0);
        }
        self.live_entries[i] += 1;
    }

    /// Bounded-memory guard: demote (detach) an input once it exceeds its
    /// live-entry budget (checked at push/push_batch boundaries). With a
    /// spill handler installed, the input's half-frozen multisets leave as
    /// a sorted run before the detach drops them from the index.
    fn enforce_entry_bound(&mut self, input: StreamId) {
        if let Some(bound) = self.robustness.max_live_entries {
            if self.live_entries(input) > bound {
                if let Some(handler) = self.spill.0.as_mut() {
                    let run: Vec<crate::state::StateEntry<P>> = self
                        .index
                        .iter_all()
                        .filter_map(|(vs, payload, node)| {
                            let counts = node.per_input.get(&input.0)?;
                            Some(crate::state::StateEntry {
                                vs,
                                payload: payload.clone(),
                                per_input: vec![(
                                    input.0,
                                    counts.iter().map(|(&ve, &c)| (ve, c as u64)).collect(),
                                )],
                                output: node
                                    .output
                                    .iter()
                                    .map(|(&ve, &c)| (ve, c as u64))
                                    .collect(),
                            })
                        })
                        .collect();
                    if !run.is_empty() {
                        handler.spill(input, &run);
                    }
                }
                self.detach(input);
            }
        }
    }

    /// Quarantine any active input whose announced stable point trails the
    /// freshly advanced output stable `t` by more than the policy margin.
    fn quarantine_laggards(&mut self, s: StreamId, t: Time) {
        let Some(lag) = self.robustness.quarantine_lag else {
            return;
        };
        if t == Time::INFINITY {
            return;
        }
        let threshold = t.saturating_sub(lag);
        for (i, c) in self.per_input.counters().iter().enumerate() {
            let id = StreamId(i as u32);
            if id != s && c.last_stable != Time::MIN && c.last_stable < threshold {
                self.inputs.quarantine(id);
            }
        }
    }

    /// `AdjustOutputCount`: when `(vs, payload)` first becomes half frozen,
    /// force the *number* of output events for the key to equal the number
    /// in the progress-driving input `s`. Operates on an already-borrowed
    /// node so the stable sweep can call it without re-looking the key up.
    fn adjust_output_count(
        node: &mut Node,
        payload: &P,
        vs: Time,
        s: StreamId,
        stats: &mut MergeStats,
        out: &mut Vec<Element<P>>,
    ) {
        let target = node.count_of(s);
        // Too many output events: cancel, preferring buckets the input does
        // not support (largest Ve first — most speculative).
        while node.count_out() > target {
            let in_counts = node.per_input.get(&s.0).cloned().unwrap_or_default();
            let victim = node
                .output
                .iter()
                .rev()
                .find(|(ve, c)| **c > in_counts.get(ve).copied().unwrap_or(0))
                .or_else(|| node.output.iter().next_back())
                .map(|(ve, _)| *ve)
                .expect("count_out > 0 implies a bucket");
            node.out_decrement(victim);
            stats.adjusts_out += 1;
            out.push(Element::adjust(payload.clone(), vs, victim, vs));
        }
        // Too few: emit inserts with Ve values the input has and we lack.
        while node.count_out() < target {
            let ve = {
                let in_counts = node.per_input.get(&s.0).expect("target > 0");
                in_counts
                    .iter()
                    .find(|(ve, c)| **c > node.output.get(ve).copied().unwrap_or(0))
                    .map(|(ve, _)| *ve)
                    .expect("input total exceeds output total")
            };
            node.out_increment(ve);
            stats.inserts_out += 1;
            out.push(Element::insert(payload.clone(), vs, ve));
        }
    }

    /// `AdjustOutput`: before a `stable(t)` freezes them, make every output
    /// `Ve` bucket with `Ve < t` hold exactly as many events as the driving
    /// input's bucket, by re-aiming surplus output events at deficit buckets
    /// (and parking leftovers at an unfrozen `Ve`). Node-level like
    /// [`LMergeR4::adjust_output_count`]; `old_stable` is the operator's
    /// `MaxStable` before this stable began.
    #[allow(clippy::too_many_arguments)]
    fn adjust_output(
        node: &mut Node,
        payload: &P,
        vs: Time,
        s: StreamId,
        t: Time,
        old_stable: Time,
        stats: &mut MergeStats,
        out: &mut Vec<Element<P>>,
    ) {
        let in_counts = node.per_input.get(&s.0).cloned().unwrap_or_default();

        // Donor pool: output events that must move (bucket over-full in the
        // about-to-freeze region), one entry per surplus event.
        let mut donors: Vec<Time> = Vec::new();
        // Deficits: (ve, how many more output events needed there).
        let mut deficits: Vec<(Time, usize)> = Vec::new();
        for (ve, in_c) in in_counts.range(..t) {
            let out_c = node.output.get(ve).copied().unwrap_or(0);
            if out_c < *in_c {
                deficits.push((*ve, in_c - out_c));
            }
        }
        for (ve, out_c) in node.output.range(..t) {
            let in_c = in_counts.get(ve).copied().unwrap_or(0);
            for _ in in_c..*out_c {
                donors.push(*ve);
            }
        }

        // Fill deficits from donors first, then from unfrozen output events.
        for (ve_d, mut need) in deficits {
            if ve_d < old_stable {
                // An already-frozen bucket can only mismatch if the inputs
                // were inconsistent; re-freezing differently would corrupt
                // the output stream, so leave it.
                continue;
            }
            while need > 0 {
                let donor = donors.pop().or_else(|| {
                    // Borrow an output event parked at an unfrozen Ve.
                    node.output.range(t..).next_back().map(|(ve, _)| *ve)
                });
                match donor {
                    Some(ve_o) => {
                        node.out_decrement(ve_o);
                        node.out_increment(ve_d);
                        stats.adjusts_out += 1;
                        out.push(Element::adjust(payload.clone(), vs, ve_o, ve_d));
                    }
                    None if vs >= old_stable => {
                        // No event to repurpose: materialize one.
                        node.out_increment(ve_d);
                        stats.inserts_out += 1;
                        out.push(Element::insert(payload.clone(), vs, ve_d));
                    }
                    None => break,
                }
                need -= 1;
            }
        }

        // Park leftover surplus events at an unfrozen end time, preferring a
        // Ve the driving input actually holds (fewer corrections later).
        for ve_o in donors {
            let target = node
                .per_input
                .get(&s.0)
                .and_then(|m| {
                    m.range(t..)
                        .find(|(ve, c)| **c > node.output.get(ve).copied().unwrap_or(0))
                        .map(|(ve, _)| *ve)
                })
                .unwrap_or(Time::INFINITY);
            node.out_decrement(ve_o);
            node.out_increment(target);
            stats.adjusts_out += 1;
            out.push(Element::adjust(payload.clone(), vs, ve_o, target));
        }
    }

    fn on_insert(&mut self, s: StreamId, e: &lmerge_temporal::Event<P>, out: &mut Vec<Element<P>>) {
        // Lines 4–7: below MaxStable only an existing node may still absorb
        // the element; a missing one was frozen and dropped. One lookup
        // either way — `entry` is only taken on the unfrozen side.
        let max_stable = self.max_stable;
        let node = if e.vs < max_stable {
            match self.index.get_mut(e.vs, &e.payload) {
                Some(node) => node,
                None => {
                    self.stats.dropped += 1;
                    return;
                }
            }
        } else {
            self.index.entry(e.vs, &e.payload)
        };
        node.increment(s, e.ve);
        // Lines 9–11: output only while the key is unfrozen and this input
        // has presented more events than we have emitted.
        if e.vs >= max_stable && node.count_of(s) > node.count_out() {
            node.out_increment(e.ve);
            self.stats.inserts_out += 1;
            out.push(Element::Insert(e.clone()));
        } else {
            self.stats.dropped += 1;
        }
        self.note_live_entry(s);
    }

    fn on_adjust(&mut self, s: StreamId, payload: &P, vs: Time, vold: Time, ve: Time) {
        // Lines 13–15 (absorbed silently; output reconciled lazily).
        let Some(node) = self.index.get_mut(vs, payload) else {
            self.stats.dropped += 1;
            return;
        };
        let mut removed = false;
        if node.decrement(s, vold) {
            if ve != vs {
                node.increment(s, ve);
            } else {
                removed = true;
            }
        } else {
            self.stats.dropped += 1;
        }
        if removed {
            if let Some(c) = self.live_entries.get_mut(s.0 as usize) {
                *c = c.saturating_sub(1);
            }
        }
    }

    fn on_stable(&mut self, s: StreamId, t: Time, out: &mut Vec<Element<P>>) {
        if t <= self.max_stable {
            return;
        }
        // One in-place sweep over the half-frozen prefix: no key clones, no
        // re-lookups, retirement during the walk.
        let old_stable = self.max_stable;
        let stats = &mut self.stats;
        let live_entries = &mut self.live_entries;
        self.index.sweep_half_frozen(t, |vs, payload, node| {
            // Lines 20–22: first half-freeze of the key → equalize counts.
            if vs >= old_stable {
                Self::adjust_output_count(node, payload, vs, s, stats, out);
            }
            // Lines 23–26: make freezing buckets match exactly.
            Self::adjust_output(node, payload, vs, s, t, old_stable, stats, out);
            // Lines 27–28: everything for the key fully frozen → drop it.
            if node.max_ve(s).is_none_or(|m| m < t) {
                for (id, counts) in &node.per_input {
                    if let Some(c) = live_entries.get_mut(*id as usize) {
                        *c = c.saturating_sub(counts.values().sum::<usize>() as u64);
                    }
                }
                SweepAction::Retire
            } else {
                SweepAction::Keep
            }
        });
        self.max_stable = t;
        self.inputs.on_stable_advance(t);
        self.quarantine_laggards(s, t);
        self.stats.stables_out += 1;
        out.push(Element::Stable(t));
    }
}

impl<P: Payload> LogicalMerge<P> for LMergeR4<P> {
    fn push(&mut self, input: StreamId, element: &Element<P>, out: &mut Vec<Element<P>>) {
        self.per_input.on_element(input, element);
        match element {
            Element::Insert(e) => {
                self.stats.inserts_in += 1;
                if !self.inputs.accepts_data(input) {
                    return;
                }
                self.on_insert(input, e, out);
                self.enforce_entry_bound(input);
            }
            Element::Adjust {
                payload,
                vs,
                vold,
                ve,
            } => {
                self.stats.adjusts_in += 1;
                if !self.inputs.accepts_data(input) {
                    return;
                }
                self.on_adjust(input, payload, *vs, *vold, *ve);
                self.enforce_entry_bound(input);
            }
            Element::Stable(t) => {
                self.stats.stables_in += 1;
                // A quarantined input announcing a stable at or past the
                // output's has caught back up — restore it before the gate.
                if *t >= self.max_stable && self.inputs.state(input) == InputState::Quarantined {
                    self.inputs.restore(input);
                }
                if !self.inputs.accepts_stable(input) {
                    return;
                }
                self.on_stable(input, *t, out);
            }
        }
    }

    fn push_batch(&mut self, input: StreamId, elements: &[Element<P>], out: &mut Vec<Element<P>>) {
        if elements.is_empty() {
            return;
        }
        let meta = BatchMeta::of(elements);
        // Punctuation-bearing batches go element-by-element: stables
        // interleave with data and per-input `last_stable` must see each one.
        if meta.has_stable() {
            for e in elements {
                self.push(input, e, out);
            }
            return;
        }
        // Data-only batch: count and gate once for the whole batch.
        self.per_input
            .on_data_batch(input, meta.inserts as u64, meta.adjusts as u64);
        self.stats.inserts_in += meta.inserts as u64;
        self.stats.adjusts_in += meta.adjusts as u64;
        if !self.inputs.accepts_data(input) {
            return;
        }
        // O(1) frozen-prefix discard: the whole `Vs` range is below both
        // `MaxStable` and the smallest live node, so every element would
        // individually resolve to "stale, no node" and be dropped. Safe
        // against detach between batches for the same reason as in R3:
        // `min_live_vs` is recomputed per call and `purge_stream` never
        // removes nodes, so the bound can only tighten.
        if meta.max_vs < self.max_stable && self.index.min_live_vs().is_none_or(|m| meta.max_vs < m)
        {
            self.stats.dropped += meta.data() as u64;
            return;
        }
        for e in elements {
            match e {
                Element::Insert(ev) => self.on_insert(input, ev, out),
                Element::Adjust {
                    payload,
                    vs,
                    vold,
                    ve,
                } => self.on_adjust(input, payload, *vs, *vold, *ve),
                Element::Stable(_) => unreachable!("data-only batch"),
            }
        }
        self.enforce_entry_bound(input);
    }

    fn attach(&mut self, join_time: Time) -> StreamId {
        self.per_input.on_attach();
        self.inputs.attach(join_time)
    }

    fn detach(&mut self, input: StreamId) {
        self.inputs.detach(input);
        self.index.purge_stream(input);
        if let Some(c) = self.live_entries.get_mut(input.0 as usize) {
            *c = 0;
        }
    }

    fn max_stable(&self) -> Time {
        self.max_stable
    }

    fn stats(&self) -> MergeStats {
        self.stats
    }

    fn input_counters(&self) -> &[InputCounters] {
        self.per_input.counters()
    }

    fn input_health(&self, input: StreamId) -> InputHealth {
        self.inputs.state(input).into()
    }

    fn health_transitions(&self) -> crate::inputs::HealthTransitions {
        self.inputs.transitions()
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.index.memory_bytes()
            + self.inputs.memory_bytes()
            + self.per_input.memory_bytes()
    }

    fn level(&self) -> RLevel {
        RLevel::R4
    }

    fn export_state(&self) -> Option<crate::state::MergeStateImage<P>> {
        let mut img = crate::state::MergeStateImage::with_common(
            crate::state::VariantKind::R4,
            &self.inputs,
            &self.per_input,
            self.stats,
        );
        img.max_stable = self.max_stable;
        img.live_entries = self.live_entries.clone();
        img.entries = self
            .index
            .iter_all()
            .map(|(vs, payload, node)| crate::state::StateEntry {
                vs,
                payload: payload.clone(),
                per_input: node
                    .per_input
                    .iter()
                    .map(|(&id, counts)| {
                        (id, counts.iter().map(|(&ve, &c)| (ve, c as u64)).collect())
                    })
                    .collect(),
                output: node.output.iter().map(|(&ve, &c)| (ve, c as u64)).collect(),
            })
            .collect();
        Some(img)
    }

    fn restore_state(&mut self, image: crate::state::MergeStateImage<P>) -> bool {
        if image.kind != crate::state::VariantKind::R4 {
            return false;
        }
        self.stats = image.apply_common(&mut self.inputs, &mut self.per_input);
        self.max_stable = image.max_stable;
        self.live_entries = image.live_entries.clone();
        self.index = In3t::new();
        for entry in &image.entries {
            let node = self.index.entry(entry.vs, &entry.payload);
            node.per_input = entry
                .per_input
                .iter()
                .map(|(id, counts)| {
                    (
                        *id,
                        counts.iter().map(|&(ve, c)| (ve, c as usize)).collect(),
                    )
                })
                .collect();
            node.output = entry
                .output
                .iter()
                .map(|&(ve, c)| (ve, c as usize))
                .collect();
        }
        true
    }

    fn set_spill_handler(&mut self, handler: Box<dyn crate::state::SpillHandler<P>>) {
        self.spill.0 = Some(handler);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_temporal::reconstitute::tdb_of;
    use lmerge_temporal::Tdb;

    type E = Element<&'static str>;

    fn final_tdb(out: &[E]) -> Tdb<&'static str> {
        tdb_of(out).unwrap()
    }

    #[test]
    fn duplicate_events_are_preserved() {
        // Two genuine duplicates in the logical stream (R4's raison d'être).
        let mut lm = LMergeR4::new(2);
        let mut out = Vec::new();
        for s in 0..2u32 {
            lm.push(StreamId(s), &E::insert("A", 1, 5), &mut out);
            lm.push(StreamId(s), &E::insert("A", 1, 5), &mut out);
        }
        lm.push(StreamId(0), &E::stable(10), &mut out);
        let tdb = final_tdb(&out);
        assert_eq!(tdb.count(&"A", Time(1), Time(5)), 2, "both duplicates kept");
    }

    #[test]
    fn per_input_counting_avoids_double_output() {
        let mut lm = LMergeR4::new(2);
        let mut out = Vec::new();
        lm.push(StreamId(0), &E::insert("A", 1, 5), &mut out);
        lm.push(StreamId(1), &E::insert("A", 1, 5), &mut out);
        assert_eq!(out.len(), 1, "second input's copy is the same event");
        lm.push(StreamId(1), &E::insert("A", 1, 5), &mut out);
        assert_eq!(out.len(), 2, "but a second occurrence is new");
    }

    #[test]
    fn divergent_ends_reconciled_on_stable() {
        let mut lm = LMergeR4::new(2);
        let mut out = Vec::new();
        lm.push(StreamId(0), &E::insert("A", 6, 7), &mut out);
        lm.push(StreamId(1), &E::insert("A", 6, 12), &mut out);
        lm.push(StreamId(1), &E::stable(20), &mut out);
        let tdb = final_tdb(&out);
        assert_eq!(tdb.count(&"A", Time(6), Time(12)), 1);
        assert_eq!(tdb.len(), 1);
    }

    #[test]
    fn spurious_event_cancelled() {
        let mut lm = LMergeR4::new(2);
        let mut out = Vec::new();
        lm.push(StreamId(0), &E::insert("X", 5, 9), &mut out);
        lm.push(StreamId(1), &E::stable(10), &mut out);
        assert!(final_tdb(&out).is_empty());
    }

    #[test]
    fn missing_output_event_materialized() {
        // Input 1 has two events for the key; only one was output (input 0
        // contributed the other logical copy later). On input 1's stable,
        // output must carry both.
        let mut lm = LMergeR4::new(2);
        let mut out = Vec::new();
        lm.push(StreamId(0), &E::insert("A", 1, 5), &mut out);
        lm.push(StreamId(1), &E::insert("A", 1, 5), &mut out); // dup, absorbed
        lm.push(StreamId(1), &E::insert("A", 1, 8), &mut out); // new copy: output
        lm.push(StreamId(1), &E::stable(10), &mut out);
        let tdb = final_tdb(&out);
        assert_eq!(tdb.count(&"A", Time(1), Time(5)), 1);
        assert_eq!(tdb.count(&"A", Time(1), Time(8)), 1);
    }

    #[test]
    fn adjust_chains_resolve_to_final_value() {
        let mut lm = LMergeR4::new(1);
        let mut out = Vec::new();
        lm.push(StreamId(0), &E::insert("A", 6, 20), &mut out);
        lm.push(StreamId(0), &E::adjust("A", 6, 20, 30), &mut out);
        lm.push(StreamId(0), &E::adjust("A", 6, 30, 25), &mut out);
        lm.push(StreamId(0), &E::stable(40), &mut out);
        let tdb = final_tdb(&out);
        assert_eq!(tdb.count(&"A", Time(6), Time(25)), 1);
        assert_eq!(tdb.len(), 1);
    }

    #[test]
    fn cancellation_via_adjust_to_vs() {
        let mut lm = LMergeR4::new(1);
        let mut out = Vec::new();
        lm.push(StreamId(0), &E::insert("A", 6, 20), &mut out);
        lm.push(StreamId(0), &E::adjust("A", 6, 20, 6), &mut out);
        lm.push(StreamId(0), &E::stable(40), &mut out);
        assert!(final_tdb(&out).is_empty());
    }

    #[test]
    fn same_key_different_ves_multiset() {
        // One logical stream holds ⟨A,1,5⟩ and ⟨A,1,9⟩ simultaneously.
        let mut lm = LMergeR4::new(2);
        let mut out = Vec::new();
        for s in 0..2u32 {
            lm.push(StreamId(s), &E::insert("A", 1, 5), &mut out);
            lm.push(StreamId(s), &E::insert("A", 1, 9), &mut out);
        }
        lm.push(StreamId(0), &E::stable(20), &mut out);
        let tdb = final_tdb(&out);
        assert_eq!(tdb.count(&"A", Time(1), Time(5)), 1);
        assert_eq!(tdb.count(&"A", Time(1), Time(9)), 1);
    }

    #[test]
    fn divergent_bucket_assignment_reconciled() {
        // Input 0 presents ends {7, 12}; input 1 presents {12, 7} but the
        // output followed input 0's provisional values {9, 12}. The driving
        // stable must leave the output with exactly {7, 12}.
        let mut lm = LMergeR4::new(2);
        let mut out = Vec::new();
        lm.push(StreamId(0), &E::insert("A", 1, 9), &mut out);
        lm.push(StreamId(0), &E::insert("A", 1, 12), &mut out);
        lm.push(StreamId(1), &E::insert("A", 1, 12), &mut out);
        lm.push(StreamId(1), &E::insert("A", 1, 7), &mut out);
        lm.push(StreamId(1), &E::stable(30), &mut out);
        let tdb = final_tdb(&out);
        assert_eq!(tdb.count(&"A", Time(1), Time(7)), 1);
        assert_eq!(tdb.count(&"A", Time(1), Time(12)), 1);
        assert_eq!(tdb.len(), 2);
    }

    #[test]
    fn stale_adjust_is_dropped_not_corrupting() {
        let mut lm = LMergeR4::new(1);
        let mut out = Vec::new();
        lm.push(StreamId(0), &E::insert("A", 1, 5), &mut out);
        // Adjust names a Vold that was never recorded.
        lm.push(StreamId(0), &E::adjust("A", 1, 99, 7), &mut out);
        lm.push(StreamId(0), &E::stable(10), &mut out);
        let tdb = final_tdb(&out);
        assert_eq!(tdb.count(&"A", Time(1), Time(5)), 1);
    }

    #[test]
    fn nodes_freed_after_full_freeze() {
        let mut lm = LMergeR4::new(1);
        let mut out = Vec::new();
        for i in 0..30i64 {
            lm.push(StreamId(0), &E::insert("k", i, i + 1), &mut out);
        }
        assert_eq!(lm.live_nodes(), 30);
        lm.push(StreamId(0), &E::stable(100), &mut out);
        assert_eq!(lm.live_nodes(), 0);
    }

    #[test]
    fn output_valid_streaminsight_stream() {
        // Whatever R4 emits must itself reconstitute without violations.
        let mut lm = LMergeR4::new(3);
        let mut out = Vec::new();
        for s in 0..3u32 {
            for i in 0..20i64 {
                lm.push(StreamId(s), &E::insert("k", i, i + 15), &mut out);
                if i % 3 == 0 {
                    lm.push(StreamId(s), &E::adjust("k", i, i + 15, i + 6), &mut out);
                }
            }
            lm.push(StreamId(s), &E::stable(10 + s as i64), &mut out);
        }
        lm.push(StreamId(0), &E::stable(100), &mut out);
        assert!(tdb_of(&out).is_ok(), "output stream must be well formed");
    }
}
