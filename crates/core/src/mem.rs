//! Deterministic memory estimation helpers shared by the index structures.
//!
//! The paper's memory figures (2, 6, 7) compare *retained state*, so the
//! estimates must be stable across runs and platforms. Rather than querying
//! `HashMap::capacity` (an implementation detail that may drift between
//! standard-library versions), we model the table allocation from the entry
//! count alone, following hashbrown's actual growth policy.

/// Estimated heap bytes of a `std::collections::HashMap` holding `len`
/// entries of `entry_bytes` each (key + value, as stored in the table).
///
/// hashbrown allocates a power-of-two bucket array (minimum 4) sized so the
/// load factor stays at or below 7/8, plus one control byte per bucket. An
/// empty map holds no allocation at all.
pub fn hash_table_bytes(len: usize, entry_bytes: usize) -> usize {
    if len == 0 {
        return 0;
    }
    let mut buckets = 4usize;
    while len > buckets * 7 / 8 {
        buckets *= 2;
    }
    buckets * (entry_bytes + 1)
}

/// Estimated heap bytes of a `std::collections::BTreeMap` holding `len`
/// entries of `entry_bytes` each.
///
/// B-tree nodes hold up to 11 entries (B = 6) and are at least half full
/// once the tree has more than one node, so the amortized per-entry
/// overhead is small and — unlike a hash table's bucket array — the
/// allocation is a pure function of the entry count. The durable layer
/// relies on that purity: a restored index must report the same bytes as
/// the index it was exported from.
pub fn btree_bytes(len: usize, entry_bytes: usize) -> usize {
    if len == 0 {
        return 0;
    }
    // Per-entry slot plus amortized node headers/edges (~16 bytes/entry).
    len * (entry_bytes + 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_is_free() {
        assert_eq!(hash_table_bytes(0, 56), 0);
        assert_eq!(btree_bytes(0, 56), 0);
    }

    #[test]
    fn btree_model_is_linear_in_entries() {
        assert_eq!(btree_bytes(1, 10), 26);
        assert_eq!(btree_bytes(10, 10), 260);
    }

    #[test]
    fn growth_follows_seven_eighths_load_factor() {
        // 4 buckets hold up to 3 entries; 8 hold 7; 16 hold 14.
        assert_eq!(hash_table_bytes(1, 10), 4 * 11);
        assert_eq!(hash_table_bytes(3, 10), 4 * 11);
        assert_eq!(hash_table_bytes(4, 10), 8 * 11);
        assert_eq!(hash_table_bytes(7, 10), 8 * 11);
        assert_eq!(hash_table_bytes(8, 10), 16 * 11);
        assert_eq!(hash_table_bytes(14, 10), 16 * 11);
        assert_eq!(hash_table_bytes(15, 10), 32 * 11);
    }
}
