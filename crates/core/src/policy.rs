//! Output-policy choices for LMerge (Section V-A of the paper).
//!
//! Compatibility (Section III-D) leaves freedom in *when* the output
//! reflects input activity. The paper identifies two policy locations in
//! Algorithm R3 — how to react to incoming `adjust` elements (location 1)
//! and when to first emit an event (location 2) — plus a choice of how the
//! output stable point tracks the inputs. Each is an independent knob here.

use lmerge_temporal::Time;

/// When an event is first emitted on the output (location 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum InsertPolicy {
    /// Emit the first insert seen for a `(Vs, Payload)` immediately
    /// (maximally responsive; the paper's default).
    #[default]
    Immediate,
    /// Emit only once the event becomes half frozen on some input — the
    /// output then never has to fully delete an event, at the cost of
    /// latency.
    WaitHalfFrozen,
    /// Emit once at least this many inputs have produced an event for the
    /// `(Vs, Payload)` — the paper's "hybrid choice" that reduces spurious
    /// output when inputs are physically very different.
    Quorum(u32),
    /// Emit an insert only when it comes from the *leading* stream (the one
    /// holding the maximum stable timestamp) — "appropriate when one stream
    /// is usually ahead of the others". Events the leader never volunteers
    /// are still recovered at freeze time from whoever drives the stable.
    FollowLeader,
}

/// How incoming `adjust` elements are reflected (location 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AdjustPolicy {
    /// Never forward adjusts eagerly; issue correcting adjusts only when a
    /// `stable` would otherwise freeze a divergence (the paper's default —
    /// this is what makes Theorem 1's non-chattiness bound hold).
    #[default]
    Lazy,
    /// Reflect every adjust at the output as soon as it is seen — chattier,
    /// but downstream listeners observe revisions earlier.
    Eager,
}

/// When `stable` punctuation is propagated.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StablePolicy {
    /// Keep the output at the maximum stable point of all inputs (the
    /// paper's recommendation, minimizing LMerge memory).
    #[default]
    TrackMax,
    /// Lag the maximum by a fixed application-time margin, trading memory
    /// for fewer correcting adjusts when inputs still disagree near the
    /// frontier.
    Lag(i64),
}

impl StablePolicy {
    /// The effective stable point to act on when an input reports `t`.
    pub fn effective(self, t: Time) -> Time {
        match self {
            StablePolicy::TrackMax => t,
            StablePolicy::Lag(delta) => t.saturating_sub(delta),
        }
    }
}

/// Runtime guards against misbehaving replicas (DESIGN.md §10). The paper
/// assumes inputs fail cleanly (Section V-B); these knobs decide when to
/// stop trusting one that degrades instead. Both default to off, which
/// reproduces the paper's behaviour exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RobustnessPolicy {
    /// Quarantine an active input whose announced stable point trails a
    /// newly propagated output stable point by more than this margin
    /// (application time). A quarantined input keeps contributing data —
    /// duplicates are absorbed anyway — but its punctuation is ignored so
    /// it cannot hold progress hostage. It is restored the moment it
    /// announces a stable at or beyond the output's.
    pub quarantine_lag: Option<i64>,
    /// Demote (detach) an input once it holds more than this many live
    /// per-input index entries — a bounded-memory guard against a replica
    /// that floods events which never freeze.
    pub max_live_entries: Option<u64>,
}

impl RobustnessPolicy {
    /// Guards disabled (the default; the paper's trust-everyone model).
    pub fn off() -> RobustnessPolicy {
        RobustnessPolicy::default()
    }

    /// Both guards enabled.
    pub fn guarded(quarantine_lag: i64, max_live_entries: u64) -> RobustnessPolicy {
        RobustnessPolicy {
            quarantine_lag: Some(quarantine_lag),
            max_live_entries: Some(max_live_entries),
        }
    }
}

/// The complete policy bundle for an LMerge instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergePolicy {
    /// Location 2: when to first emit an event.
    pub insert: InsertPolicy,
    /// Location 1: how to reflect adjusts.
    pub adjust: AdjustPolicy,
    /// Stable propagation.
    pub stable: StablePolicy,
    /// Runtime guards against misbehaving replicas.
    pub robustness: RobustnessPolicy,
}

impl MergePolicy {
    /// The paper's default policy: immediate inserts, lazy adjusts, output
    /// stable tracking the maximum input stable point.
    pub fn paper_default() -> MergePolicy {
        MergePolicy::default()
    }

    /// A conservative policy: wait for half-frozen support before emitting,
    /// lazy adjusts (the paper's "more reasonable policy" discussion).
    pub fn conservative() -> MergePolicy {
        MergePolicy {
            insert: InsertPolicy::WaitHalfFrozen,
            ..Default::default()
        }
    }

    /// An eager policy: immediate inserts and eager adjust propagation
    /// (maximum responsiveness, maximum chattiness — the paper's `Out1`).
    pub fn eager() -> MergePolicy {
        MergePolicy {
            adjust: AdjustPolicy::Eager,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = MergePolicy::paper_default();
        assert_eq!(p.insert, InsertPolicy::Immediate);
        assert_eq!(p.adjust, AdjustPolicy::Lazy);
        assert_eq!(p.stable, StablePolicy::TrackMax);
    }

    #[test]
    fn stable_lag_shifts_effective_point() {
        assert_eq!(StablePolicy::Lag(5).effective(Time(20)), Time(15));
        assert_eq!(StablePolicy::TrackMax.effective(Time(20)), Time(20));
        assert_eq!(
            StablePolicy::Lag(5).effective(Time::INFINITY),
            Time::INFINITY,
            "lagging infinity is still infinity"
        );
    }

    #[test]
    fn named_policies() {
        assert_eq!(
            MergePolicy::conservative().insert,
            InsertPolicy::WaitHalfFrozen
        );
        assert_eq!(MergePolicy::eager().adjust, AdjustPolicy::Eager);
    }

    #[test]
    fn robustness_defaults_off() {
        let p = MergePolicy::paper_default();
        assert_eq!(p.robustness, RobustnessPolicy::off());
        assert_eq!(p.robustness.quarantine_lag, None);
        assert_eq!(p.robustness.max_live_entries, None);
        let g = RobustnessPolicy::guarded(10, 1_000);
        assert_eq!(g.quarantine_lag, Some(10));
        assert_eq!(g.max_live_entries, Some(1_000));
    }
}
