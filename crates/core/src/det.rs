//! Deterministic hash maps for the operator indexes.
//!
//! The chaos harness asserts that replaying the same `FaultPlan` seed
//! yields a byte-identical observability trace. `std`'s default
//! `RandomState` seeds every map instance differently, so two runs (or two
//! operator instances) iterate identical entries in different orders — and
//! the stable-sweep emission order, hence the trace, would vary between
//! runs. `DetHashMap` pins the hasher (SipHash with fixed keys), making
//! iteration order a pure function of the operation history.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;

/// The fixed-key hasher state shared by all deterministic maps.
pub type DetBuildHasher = BuildHasherDefault<DefaultHasher>;

/// A `HashMap` whose iteration order is run-independent: identical
/// insert/remove histories produce identical iteration orders, across
/// instances and across processes.
pub type DetHashMap<K, V> = HashMap<K, V, DetBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_order_is_instance_independent() {
        let build = |keys: &[u64]| {
            let mut m: DetHashMap<u64, u64> = DetHashMap::default();
            for &k in keys {
                m.insert(k, k);
            }
            m.keys().copied().collect::<Vec<_>>()
        };
        let keys: Vec<u64> = (0..1000).map(|i| i * 2_654_435_761 % 4096).collect();
        assert_eq!(build(&keys), build(&keys));
    }
}
