//! Canonical, serializable images of LMerge operator state.
//!
//! A [`MergeStateImage`] is everything a merge variant needs to continue a
//! run after the process hosting it dies: index entries, per-input
//! multisets, output support, stable watermarks, robustness/lifecycle
//! state, and counters. Every variant of the spectrum exports into (and
//! restores from) this one shape; variants simply leave the fields they do
//! not track empty. The durability crate serializes images to checkpoint
//! files; the chaos layer round-trips them in memory to simulate a merge
//! death.
//!
//! The shape is deliberately *canonical*: entries are sorted by `(Vs,
//! payload)` and per-input multisets by `(input, Ve)`, so two exports of
//! equal logical state are byte-identical when encoded — which is what
//! lets the crash-recovery conformance tests compare a restored run
//! against a never-killed one at the trace level.

use lmerge_temporal::{Payload, StreamId, Time};

/// Which variant of the spectrum produced an image. Restore refuses an
/// image from a different variant: the per-variant invariants (what the
/// entry fields mean) do not transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VariantKind {
    /// R0: insert-only, strictly increasing `Vs`.
    R0,
    /// R1: insert-only, non-decreasing `Vs`.
    R1,
    /// R2: insert-only, non-decreasing, `(Vs, Payload)` key.
    R2,
    /// R3: the indexed general algorithm (in2t).
    R3,
    /// The naive per-input-index baseline.
    R3Naive,
    /// R4: the multiset algorithm (in3t).
    R4,
    /// A hash-partitioned wrapper around per-shard images.
    Sharded,
}

impl VariantKind {
    /// Stable numeric tag used by the durable codec.
    pub fn tag(self) -> u8 {
        match self {
            VariantKind::R0 => 0,
            VariantKind::R1 => 1,
            VariantKind::R2 => 2,
            VariantKind::R3 => 3,
            VariantKind::R3Naive => 4,
            VariantKind::R4 => 5,
            VariantKind::Sharded => 6,
        }
    }

    /// Inverse of [`tag`](VariantKind::tag).
    pub fn from_tag(tag: u8) -> Option<VariantKind> {
        Some(match tag {
            0 => VariantKind::R0,
            1 => VariantKind::R1,
            2 => VariantKind::R2,
            3 => VariantKind::R3,
            4 => VariantKind::R3Naive,
            5 => VariantKind::R4,
            6 => VariantKind::Sharded,
            _ => return None,
        })
    }
}

/// One indexed event: its key, its per-input support, and what the merge
/// has emitted for it.
///
/// The field meanings are variant-relative:
/// * **R3 (in2t)** — each input holds at most one `Ve` per entry, so every
///   multiset is a single `(ve, 1)` pair; `output` is the emitted `Ve`.
/// * **R4 (in3t)** — true multisets of `(ve, count)`.
/// * **R2** — occurrence counts at `max_vs`, carried as `(Time::MIN, n)`.
/// * **naive baseline** — `output` is the output index's `Ve`; per-input
///   indexes travel in [`MergeStateImage::input_indexes`] instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateEntry<P> {
    /// The event's valid-start time (the index key's first half).
    pub vs: Time,
    /// The event's payload (the index key's second half).
    pub payload: P,
    /// Per-input `Ve` support: `(input, [(ve, count)])`, sorted by input
    /// then `ve`.
    pub per_input: Vec<(u32, Vec<(Time, u64)>)>,
    /// The output-side view: `[(ve, count)]`, sorted by `ve`.
    pub output: Vec<(Time, u64)>,
}

/// A serializable copy of one input's lifecycle state (mirrors
/// `inputs::InputState`, which stays private to the registry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputStateImage {
    /// Attached and fully trusted.
    Active,
    /// Attached, gated until the output stable covers the join time.
    Joining(Time),
    /// Demoted by a robustness policy.
    Quarantined,
    /// Detached.
    Left,
}

/// Everything one merge operator needs to continue after a restart.
///
/// Constructed by [`LogicalMerge::export_state`](crate::LogicalMerge::export_state)
/// and consumed by [`LogicalMerge::restore_state`](crate::LogicalMerge::restore_state).
/// Fields a variant does not track are simply empty/`MIN` — the image is
/// the union of the spectrum's state shapes, not an intersection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeStateImage<P> {
    /// Which variant produced the image.
    pub kind: VariantKind,
    /// High-water `Vs` (R0–R2 ordering cursor).
    pub max_vs: Time,
    /// The output stable point.
    pub max_stable: Time,
    /// Sharded wrapper's emitted watermark (min over shard stables).
    pub watermark: Time,
    /// R3's sweep leader (the input whose punctuation drove the last sweep).
    pub leader: Option<u32>,
    /// R1's per-input emitted-at-`max_vs` tallies.
    pub same_vs_count: Vec<u64>,
    /// R3/R4's per-input live-entry counters (robustness accounting).
    pub live_entries: Vec<u64>,
    /// Per-input lifecycle states, indexed by stream id.
    pub input_states: Vec<InputStateImage>,
    /// Lifetime health-transition counts `(quarantines, restores,
    /// departures)`.
    pub transitions: (u64, u64, u64),
    /// Per-input delivery counters, indexed by stream id.
    pub counters: Vec<CountersImage>,
    /// Output/element counters: `(inserts_in, adjusts_in, stables_in,
    /// inserts_out, adjusts_out, stables_out, dropped)`.
    pub stats: (u64, u64, u64, u64, u64, u64, u64),
    /// The shared index entries (R2/R3/R4: the live index; naive: the
    /// output index).
    pub entries: Vec<StateEntry<P>>,
    /// The naive baseline's per-input indexes, indexed by stream id; each
    /// entry's `output` field carries that index's `Ve` as `[(ve, 1)]`.
    pub input_indexes: Vec<Vec<StateEntry<P>>>,
    /// Per-shard images for [`VariantKind::Sharded`]; empty otherwise.
    pub shards: Vec<MergeStateImage<P>>,
}

/// Serializable copy of one input's `InputCounters`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountersImage {
    /// Insert elements delivered by this input.
    pub inserts: u64,
    /// Adjust elements delivered by this input.
    pub adjusts: u64,
    /// Stable punctuations delivered by this input.
    pub stables: u64,
    /// The latest stable point this input announced.
    pub last_stable: Time,
}

impl<P: Payload> MergeStateImage<P> {
    /// An empty image for `kind` — every field at its "not tracked" value.
    pub fn empty(kind: VariantKind) -> MergeStateImage<P> {
        MergeStateImage {
            kind,
            max_vs: Time::MIN,
            max_stable: Time::MIN,
            watermark: Time::MIN,
            leader: None,
            same_vs_count: Vec::new(),
            live_entries: Vec::new(),
            input_states: Vec::new(),
            transitions: (0, 0, 0),
            counters: Vec::new(),
            stats: (0, 0, 0, 0, 0, 0, 0),
            entries: Vec::new(),
            input_indexes: Vec::new(),
            shards: Vec::new(),
        }
    }

    /// Total entries across the shared index, the per-input indexes, and
    /// nested shard images — the "how much state would we persist" figure
    /// behind the checkpoint metrics.
    pub fn total_entries(&self) -> usize {
        self.entries.len()
            + self.input_indexes.iter().map(Vec::len).sum::<usize>()
            + self.shards.iter().map(Self::total_entries).sum::<usize>()
    }

    /// An image of `kind` pre-filled with the state every variant shares:
    /// the input registry, per-input delivery counters, and element stats.
    pub(crate) fn with_common(
        kind: VariantKind,
        inputs: &crate::inputs::Inputs,
        per_input: &crate::stats::PerInput,
        stats: crate::stats::MergeStats,
    ) -> MergeStateImage<P> {
        let mut img = MergeStateImage::empty(kind);
        img.input_states = inputs.export_states();
        let t = inputs.transitions();
        img.transitions = (t.quarantines, t.restores, t.departures);
        img.counters = per_input.export_counters();
        img.stats = stats.to_tuple();
        img
    }

    /// Restore the shared state captured by
    /// [`with_common`](MergeStateImage::with_common) into a variant's
    /// registry and counter structures; returns the element stats.
    pub(crate) fn apply_common(
        &self,
        inputs: &mut crate::inputs::Inputs,
        per_input: &mut crate::stats::PerInput,
    ) -> crate::stats::MergeStats {
        let (q, r, d) = self.transitions;
        inputs.restore_registry(
            &self.input_states,
            crate::inputs::HealthTransitions {
                quarantines: q,
                restores: r,
                departures: d,
            },
        );
        per_input.restore_counters(&self.counters);
        crate::stats::MergeStats::from_tuple(self.stats)
    }
}

/// Where demoted state goes when a `max_live_entries` bound trips.
///
/// R3/R4 call [`spill`](SpillHandler::spill) with the flooding input's
/// half-frozen entries (sorted by `(Vs, payload)`) *before* falling back to
/// the detach-and-drop demotion. Returning `true` claims the run: the
/// input is still demoted (its punctuation can no longer be trusted), but
/// the state left the process instead of vanishing — the durable crate's
/// spill store k-way-merges the runs back on read.
pub trait SpillHandler<P: Payload>: Send {
    /// Persist one sorted run of demoted entries from `input`. Return
    /// `false` to decline (the caller then drops the state as before).
    fn spill(&mut self, input: StreamId, run: &[StateEntry<P>]) -> bool;
}

/// Internal holder for an optional spill handler that keeps the owning
/// operator `derive(Debug)`-able (trait objects are not `Debug`).
pub(crate) struct SpillSlot<P: Payload>(pub(crate) Option<Box<dyn SpillHandler<P>>>);

impl<P: Payload> Default for SpillSlot<P> {
    fn default() -> Self {
        SpillSlot(None)
    }
}

impl<P: Payload> std::fmt::Debug for SpillSlot<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "SpillSlot(installed)"
        } else {
            "SpillSlot(none)"
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_tags_round_trip() {
        for kind in [
            VariantKind::R0,
            VariantKind::R1,
            VariantKind::R2,
            VariantKind::R3,
            VariantKind::R3Naive,
            VariantKind::R4,
            VariantKind::Sharded,
        ] {
            assert_eq!(VariantKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(VariantKind::from_tag(200), None);
    }

    #[test]
    fn empty_image_has_no_entries() {
        let img: MergeStateImage<&'static str> = MergeStateImage::empty(VariantKind::R3);
        assert_eq!(img.total_entries(), 0);
        assert_eq!(img.kind, VariantKind::R3);
    }
}
