//! The `in2t` (index-2-tier) data structure of Figure 1 (left).
//!
//! The top tier orders live `(Vs, Payload)` keys by `Vs` (the paper uses a
//! red-black tree; we use a `BTreeMap<Vs, BTreeMap<Payload, Node>>`, which
//! supports the same `FindHalfFrozen` range scan). Each node stores the
//! event *once* — payloads are shared across inputs, which is what makes
//! LMR3+ memory nearly independent of the number of inputs — plus a small
//! table mapping each input stream (and the output pseudo-stream) to its
//! current `Ve` for the event.
//!
//! The inner tier is an ordered map rather than a hash map because the
//! durability layer requires *restorable iteration*: a sweep over an index
//! rebuilt from a checkpoint must emit in exactly the order the original
//! would have, and a hash table's slot layout is a function of its full
//! insertion/deletion history, which a rebuild cannot reproduce. Keying by
//! payload `Ord` makes iteration a pure function of the index's contents.

use crate::mem::btree_bytes;
use lmerge_temporal::{Payload, StreamId, Time};
use std::collections::BTreeMap;

/// Verdict returned by a sweep visitor for each visited node: keep it in
/// the index, or retire (remove) it as settled. Shared by [`In2t`] and
/// [`crate::in3t::In3t`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepAction {
    /// The node stays live (it still has unfrozen end times).
    Keep,
    /// The node is fully settled; remove it during the walk.
    Retire,
}

/// Per-key node: one shared event, per-stream current end times.
///
/// The per-stream table is a small vector rather than a hash map: LMerge
/// fans in a handful of streams, and a linear scan over an inline vector is
/// both faster and leaner than a heap-allocated map per event.
#[derive(Clone, Debug)]
pub struct Node {
    /// Current `Ve` on each input stream that has produced the event.
    per_input: Vec<(u32, Time)>,
    /// Current `Ve` on the output (`None` until first emitted — the paper's
    /// hash entry with "special key ∞", made optional to support the
    /// `WaitHalfFrozen`/`Quorum` insert policies).
    pub output_ve: Option<Time>,
}

impl Node {
    fn new() -> Node {
        Node {
            per_input: Vec::new(),
            output_ve: None,
        }
    }

    /// Record `ve` for input `s`. Returns true when `s` is new to the node.
    pub fn set_input(&mut self, s: StreamId, ve: Time) -> bool {
        for entry in &mut self.per_input {
            if entry.0 == s.0 {
                entry.1 = ve;
                return false;
            }
        }
        self.per_input.push((s.0, ve));
        true
    }

    /// The current `Ve` recorded for input `s`, if any.
    pub fn input_ve(&self, s: StreamId) -> Option<Time> {
        self.per_input
            .iter()
            .find(|(id, _)| *id == s.0)
            .map(|(_, ve)| *ve)
    }

    /// Whether input `s` has produced the event.
    pub fn has_input(&self, s: StreamId) -> bool {
        self.per_input.iter().any(|(id, _)| *id == s.0)
    }

    /// Drop input `s`'s entry. Returns true if one existed.
    pub fn remove_input(&mut self, s: StreamId) -> bool {
        if let Some(pos) = self.per_input.iter().position(|(id, _)| *id == s.0) {
            self.per_input.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Number of distinct inputs that have produced the event (drives the
    /// `Quorum` insert policy).
    pub fn support(&self) -> u32 {
        self.per_input.len() as u32
    }

    /// Iterate the `(input, Ve)` entries currently recorded on the node
    /// (robustness accounting: callers decrement per-input live-entry
    /// counters when a node retires).
    pub fn entries(&self) -> impl Iterator<Item = (StreamId, Time)> + '_ {
        self.per_input.iter().map(|&(id, ve)| (StreamId(id), ve))
    }
}

/// The two-tier index: `Vs → (Payload → Node)`.
#[derive(Debug)]
pub struct In2t<P: Payload> {
    tiers: BTreeMap<Time, BTreeMap<P, Node>>,
    nodes: usize,
    /// Retained payload heap bytes (each payload stored once).
    payload_bytes: usize,
    /// Total per-input hash entries across all nodes.
    entries: usize,
}

impl<P: Payload> In2t<P> {
    /// An empty index.
    pub fn new() -> In2t<P> {
        In2t {
            tiers: BTreeMap::new(),
            nodes: 0,
            payload_bytes: 0,
            entries: 0,
        }
    }

    /// Number of live `(Vs, Payload)` nodes (the paper's `w`).
    pub fn len(&self) -> usize {
        self.nodes
    }

    /// Whether the index holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes == 0
    }

    /// Look up the node for `(vs, payload)` (the paper's `SameVsPayload`).
    pub fn get(&self, vs: Time, payload: &P) -> Option<&Node> {
        self.tiers.get(&vs).and_then(|m| m.get(payload))
    }

    /// Mutable lookup; `added_entry` bookkeeping is the caller's job via
    /// [`In2t::note_entry_added`].
    pub fn get_mut(&mut self, vs: Time, payload: &P) -> Option<&mut Node> {
        self.tiers.get_mut(&vs).and_then(|m| m.get_mut(payload))
    }

    /// Add a node for `(vs, payload)`; returns a mutable reference.
    /// The caller must not add a node that already exists.
    pub fn add_node(&mut self, vs: Time, payload: P) -> &mut Node {
        self.nodes += 1;
        self.payload_bytes += payload.heap_bytes();
        self.tiers
            .entry(vs)
            .or_default()
            .entry(payload)
            .or_insert_with(Node::new)
    }

    /// Record that one per-input hash entry was added somewhere.
    pub fn note_entry_added(&mut self) {
        self.entries += 1;
    }

    /// Remove the node for `(vs, payload)`.
    pub fn remove(&mut self, vs: Time, payload: &P) {
        if let Some(m) = self.tiers.get_mut(&vs) {
            if let Some(node) = m.remove(payload) {
                self.nodes -= 1;
                self.payload_bytes -= payload.heap_bytes();
                self.entries -= node.per_input.len();
            }
            if m.is_empty() {
                self.tiers.remove(&vs);
            }
        }
    }

    /// Iterate `(vs, payload, node)` for all nodes with `Vs < t` (the
    /// paper's `FindHalfFrozen`), in `Vs` order.
    pub fn half_frozen(&self, t: Time) -> impl Iterator<Item = (Time, &P, &Node)> + '_ {
        self.tiers
            .range(..t)
            .flat_map(|(vs, m)| m.iter().map(move |(p, n)| (*vs, p, n)))
    }

    /// Collect the keys of all nodes with `Vs < t` (cloned so the caller can
    /// mutate the index while walking them).
    ///
    /// Prefer [`In2t::sweep_half_frozen`] on hot paths: this form clones
    /// every payload below `t` and forces the caller into a second lookup
    /// per key. It is retained for tests and diagnostic tooling.
    pub fn half_frozen_keys(&self, t: Time) -> Vec<(Time, P)> {
        self.tiers
            .range(..t)
            .flat_map(|(vs, m)| m.keys().map(move |p| (*vs, p.clone())))
            .collect()
    }

    /// Visit every node with `Vs < t` (the paper's `FindHalfFrozen`) exactly
    /// once, in `Vs` order, with mutable access — the allocation-free
    /// replacement for [`In2t::half_frozen_keys`] + re-lookup. Nodes for
    /// which the visitor returns [`SweepAction::Retire`] are unlinked during
    /// the walk with full bookkeeping; no payload is cloned and no key is
    /// looked up twice.
    pub fn sweep_half_frozen<F>(&mut self, t: Time, mut visit: F)
    where
        F: FnMut(Time, &P, &mut Node) -> SweepAction,
    {
        let In2t {
            tiers,
            nodes,
            payload_bytes,
            entries,
        } = self;
        let mut emptied = false;
        for (vs, tier) in tiers.range_mut(..t) {
            tier.retain(|payload, node| match visit(*vs, payload, node) {
                SweepAction::Keep => true,
                SweepAction::Retire => {
                    *nodes -= 1;
                    *payload_bytes -= payload.heap_bytes();
                    *entries -= node.per_input.len();
                    false
                }
            });
            emptied |= tier.is_empty();
        }
        if emptied {
            tiers.retain(|_, m| !m.is_empty());
        }
    }

    /// The smallest live `Vs` in the index, if any — an O(log n) lower
    /// bound that lets callers discard whole stale batches without probing
    /// each element (no node can exist below this timestamp).
    pub fn min_live_vs(&self) -> Option<Time> {
        self.tiers.keys().next().copied()
    }

    /// Drop every per-input entry belonging to `s` (stream detach).
    pub fn purge_stream(&mut self, s: StreamId) {
        for m in self.tiers.values_mut() {
            for node in m.values_mut() {
                if node.remove_input(s) {
                    self.entries -= 1;
                }
            }
        }
    }

    /// Iterate every node in canonical `(Vs, payload)` order — the
    /// checkpoint export walk. Unlike [`In2t::half_frozen`] this includes
    /// nodes at `Vs = ∞`.
    pub fn iter_all(&self) -> impl Iterator<Item = (Time, &P, &Node)> + '_ {
        self.tiers
            .iter()
            .flat_map(|(vs, m)| m.iter().map(move |(p, n)| (*vs, p, n)))
    }

    /// Rebuild one node from checkpoint data, with full `nodes` /
    /// `payload_bytes` / `entries` bookkeeping. The caller must not restore
    /// a key that already exists.
    pub fn restore_node(
        &mut self,
        vs: Time,
        payload: P,
        per_input: &[(u32, Time)],
        output_ve: Option<Time>,
    ) {
        self.entries += per_input.len();
        let node = self.add_node(vs, payload);
        node.per_input = per_input.to_vec();
        node.output_ve = output_ve;
    }

    /// Estimated memory: tree structure, the per-`Vs` payload tiers
    /// (modelled by [`btree_bytes`] so the figure is a pure function of the
    /// contents — a restored index reports the same bytes as its source),
    /// shared payloads, and per-input entries.
    pub fn memory_bytes(&self) -> usize {
        const TIER_OVERHEAD: usize = 48; // BTree node amortized per key
        const ENTRY_BYTES: usize = std::mem::size_of::<(u32, Time)>() + 16;
        let tables: usize = self
            .tiers
            .values()
            .map(|m| btree_bytes(m.len(), std::mem::size_of::<(P, Node)>()))
            .sum();
        self.tiers.len() * TIER_OVERHEAD + tables + self.payload_bytes + self.entries * ENTRY_BYTES
    }
}

impl<P: Payload> Default for In2t<P> {
    fn default() -> Self {
        In2t::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_remove() {
        let mut ix: In2t<&str> = In2t::new();
        ix.add_node(Time(5), "A").set_input(StreamId(0), Time(9));
        ix.note_entry_added();
        assert_eq!(ix.len(), 1);
        assert_eq!(
            ix.get(Time(5), &"A").unwrap().input_ve(StreamId(0)),
            Some(Time(9))
        );
        assert!(ix.get(Time(5), &"B").is_none());
        ix.remove(Time(5), &"A");
        assert!(ix.is_empty());
    }

    #[test]
    fn half_frozen_scans_by_vs() {
        let mut ix: In2t<&str> = In2t::new();
        ix.add_node(Time(1), "A");
        ix.add_node(Time(5), "B");
        ix.add_node(Time(9), "C");
        let hf: Vec<_> = ix.half_frozen(Time(6)).map(|(vs, p, _)| (vs, *p)).collect();
        assert_eq!(hf, vec![(Time(1), "A"), (Time(5), "B")]);
        assert_eq!(ix.half_frozen_keys(Time(1)).len(), 0);
    }

    #[test]
    fn support_counts_distinct_inputs() {
        let mut ix: In2t<&str> = In2t::new();
        let n = ix.add_node(Time(1), "A");
        n.set_input(StreamId(0), Time(5));
        n.set_input(StreamId(0), Time(7)); // same input again
        n.set_input(StreamId(1), Time(5));
        assert_eq!(ix.get(Time(1), &"A").unwrap().support(), 2);
    }

    #[test]
    fn purge_stream_removes_entries() {
        let mut ix: In2t<&str> = In2t::new();
        let n = ix.add_node(Time(1), "A");
        n.set_input(StreamId(0), Time(5));
        n.set_input(StreamId(1), Time(6));
        ix.note_entry_added();
        ix.note_entry_added();
        ix.purge_stream(StreamId(0));
        let node = ix.get(Time(1), &"A").unwrap();
        assert!(!node.has_input(StreamId(0)));
        assert!(node.has_input(StreamId(1)));
    }

    #[test]
    fn sweep_visits_in_vs_order_and_retires_in_place() {
        let mut ix: In2t<&str> = In2t::new();
        ix.add_node(Time(1), "A").set_input(StreamId(0), Time(3));
        ix.note_entry_added();
        ix.add_node(Time(5), "B").set_input(StreamId(0), Time(90));
        ix.note_entry_added();
        ix.add_node(Time(9), "C");
        let mut seen = Vec::new();
        ix.sweep_half_frozen(Time(6), |vs, p, node| {
            seen.push((vs, *p));
            if node.input_ve(StreamId(0)).unwrap_or(vs) < Time(6) {
                SweepAction::Retire
            } else {
                SweepAction::Keep
            }
        });
        assert_eq!(seen, vec![(Time(1), "A"), (Time(5), "B")]);
        assert!(ix.get(Time(1), &"A").is_none(), "A retired");
        assert!(ix.get(Time(5), &"B").is_some(), "B kept");
        assert_eq!(ix.len(), 2);
        assert_eq!(ix.min_live_vs(), Some(Time(5)), "empty tier unlinked");
    }

    #[test]
    fn sweep_can_mutate_kept_nodes() {
        let mut ix: In2t<&str> = In2t::new();
        ix.add_node(Time(1), "A").set_input(StreamId(0), Time(50));
        ix.note_entry_added();
        ix.sweep_half_frozen(Time(10), |_, _, node| {
            node.output_ve = Some(Time(50));
            SweepAction::Keep
        });
        assert_eq!(ix.get(Time(1), &"A").unwrap().output_ve, Some(Time(50)));
    }

    #[test]
    fn min_live_vs_tracks_smallest_tier() {
        let mut ix: In2t<&str> = In2t::new();
        assert_eq!(ix.min_live_vs(), None);
        ix.add_node(Time(7), "A");
        ix.add_node(Time(3), "B");
        assert_eq!(ix.min_live_vs(), Some(Time(3)));
        ix.remove(Time(3), &"B");
        assert_eq!(ix.min_live_vs(), Some(Time(7)));
    }

    #[test]
    fn memory_accounts_for_tier_trees() {
        use crate::mem::btree_bytes;
        // Known shape: 10 nodes in one tier, no per-input entries, static
        // payloads (zero heap bytes) — the estimate is pinned exactly.
        let mut ix: In2t<&'static str> = In2t::new();
        let keys = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"];
        for k in keys {
            ix.add_node(Time(1), k);
        }
        let expected = 48 + btree_bytes(10, std::mem::size_of::<(&str, Node)>());
        assert_eq!(ix.memory_bytes(), expected);
    }

    #[test]
    fn restore_rebuilds_an_identical_index() {
        let mut ix: In2t<&'static str> = In2t::new();
        let n = ix.add_node(Time(1), "A");
        n.set_input(StreamId(0), Time(5));
        n.set_input(StreamId(2), Time(9));
        n.output_ve = Some(Time(5));
        ix.note_entry_added();
        ix.note_entry_added();
        ix.add_node(Time(7), "B").set_input(StreamId(1), Time(8));
        ix.note_entry_added();

        let mut back: In2t<&'static str> = In2t::new();
        for (vs, p, node) in ix.iter_all() {
            let per_input: Vec<(u32, Time)> = node.entries().map(|(s, ve)| (s.0, ve)).collect();
            back.restore_node(vs, *p, &per_input, node.output_ve);
        }
        assert_eq!(back.len(), ix.len());
        assert_eq!(back.memory_bytes(), ix.memory_bytes());
        let a: Vec<_> = ix.iter_all().map(|(vs, p, _)| (vs, *p)).collect();
        let b: Vec<_> = back.iter_all().map(|(vs, p, _)| (vs, *p)).collect();
        assert_eq!(a, b, "canonical iteration survives the round trip");
        assert_eq!(
            back.get(Time(1), &"A").unwrap().input_ve(StreamId(2)),
            Some(Time(9))
        );
        assert_eq!(back.get(Time(1), &"A").unwrap().output_ve, Some(Time(5)));
    }

    #[test]
    fn memory_shares_payloads_across_inputs() {
        use lmerge_temporal::Value;
        let mut ix: In2t<Value> = In2t::new();
        let p = Value::synthetic(1, 1000);
        let n = ix.add_node(Time(1), p.clone());
        for s in 0..10 {
            n.set_input(StreamId(s), Time(5));
        }
        for _ in 0..10 {
            ix.note_entry_added();
        }
        // Ten inputs, but only one kilobyte of payload is charged.
        let mem = ix.memory_bytes();
        assert!(mem > 1000 && mem < 3000, "got {mem}");
    }
}
