//! Algorithm R2: LMerge for insert-only, non-decreasing streams where
//! elements with equal `Vs` may arrive in *different* orders on different
//! inputs (paper Section IV-C).
//!
//! A hash table indexes (by payload) every element at the current `MaxVs`;
//! an insert is new exactly when the sending input has presented more
//! occurrences of the payload than the output has emitted. When
//! `(Vs, Payload)` is a key (the paper's stated assumption) the counts are
//! all 0/1 and this degenerates to a set-membership test; the counting form
//! is the "relaxation to handle duplicates" the paper notes is
//! "straightforward and omitted".

use crate::api::{InputHealth, LogicalMerge};
use crate::inputs::Inputs;
use crate::stats::{InputCounters, MergeStats, PerInput};
use lmerge_properties::RLevel;
use lmerge_temporal::{Element, Payload, StreamId, Time};
use std::collections::HashMap;

/// Per-payload occurrence counts at the current `MaxVs`.
#[derive(Debug, Default, Clone)]
struct Counts {
    /// `(input id, occurrences seen)`, a small linear-scan table.
    per_input: Vec<(u32, u64)>,
    /// Occurrences emitted on the output.
    out: u64,
}

impl Counts {
    fn bump(&mut self, s: StreamId) -> u64 {
        for entry in &mut self.per_input {
            if entry.0 == s.0 {
                entry.1 += 1;
                return entry.1;
            }
        }
        self.per_input.push((s.0, 1));
        1
    }
}

/// The R2 merge: `O(g·p)` state (all events at the newest timestamp).
#[derive(Debug)]
pub struct LMergeR2<P: Payload> {
    max_vs: Time,
    max_stable: Time,
    /// Occurrence counts per payload with `Vs == MaxVs`.
    at_max_vs: HashMap<P, Counts>,
    /// Retained payload bytes in `at_max_vs` (memory metric).
    payload_bytes: usize,
    inputs: Inputs,
    stats: MergeStats,
    per_input: PerInput,
}

impl<P: Payload> LMergeR2<P> {
    /// An R2 merge over `n` initially attached inputs.
    pub fn new(n: usize) -> LMergeR2<P> {
        LMergeR2 {
            max_vs: Time::MIN,
            max_stable: Time::MIN,
            at_max_vs: HashMap::new(),
            payload_bytes: 0,
            inputs: Inputs::new(n),
            stats: MergeStats::default(),
            per_input: PerInput::new(n),
        }
    }
}

impl<P: Payload> LogicalMerge<P> for LMergeR2<P> {
    fn push(&mut self, input: StreamId, element: &Element<P>, out: &mut Vec<Element<P>>) {
        self.per_input.on_element(input, element);
        match element {
            Element::Insert(e) => {
                self.stats.inserts_in += 1;
                if !self.inputs.accepts_data(input) {
                    return;
                }
                if e.vs < self.max_vs {
                    self.stats.dropped += 1;
                    return;
                }
                if e.vs > self.max_vs {
                    self.at_max_vs.clear();
                    self.payload_bytes = 0;
                    self.max_vs = e.vs;
                }
                let counts = match self.at_max_vs.get_mut(&e.payload) {
                    Some(c) => c,
                    None => {
                        self.payload_bytes += e.payload.heap_bytes();
                        self.at_max_vs.entry(e.payload.clone()).or_default()
                    }
                };
                // New exactly when this input has now presented more
                // occurrences than the output carries.
                if counts.bump(input) > counts.out {
                    counts.out += 1;
                    self.stats.inserts_out += 1;
                    out.push(Element::Insert(e.clone()));
                } else {
                    self.stats.dropped += 1;
                }
            }
            Element::Adjust { .. } => {
                panic!("LMergeR2: adjust() elements are not supported in case R2");
            }
            Element::Stable(t) => {
                self.stats.stables_in += 1;
                if !self.inputs.accepts_stable(input) {
                    return;
                }
                if *t > self.max_stable {
                    self.max_stable = *t;
                    self.inputs.on_stable_advance(self.max_stable);
                    self.stats.stables_out += 1;
                    out.push(Element::Stable(*t));
                }
            }
        }
    }

    fn attach(&mut self, join_time: Time) -> StreamId {
        self.per_input.on_attach();
        self.inputs.attach(join_time)
    }

    fn detach(&mut self, input: StreamId) {
        self.inputs.detach(input);
    }

    fn max_stable(&self) -> Time {
        self.max_stable
    }

    fn feedback_point(&self) -> Time {
        self.max_vs.max(self.max_stable)
    }

    fn stats(&self) -> MergeStats {
        self.stats
    }

    fn input_counters(&self) -> &[InputCounters] {
        self.per_input.counters()
    }

    fn input_health(&self, input: StreamId) -> InputHealth {
        self.inputs.state(input).into()
    }

    fn health_transitions(&self) -> crate::inputs::HealthTransitions {
        self.inputs.transitions()
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.at_max_vs.capacity() * std::mem::size_of::<P>()
            + self.payload_bytes
            + self.inputs.memory_bytes()
            + self.per_input.memory_bytes()
    }

    fn level(&self) -> RLevel {
        RLevel::R2
    }

    fn export_state(&self) -> Option<crate::state::MergeStateImage<P>> {
        let mut img = crate::state::MergeStateImage::with_common(
            crate::state::VariantKind::R2,
            &self.inputs,
            &self.per_input,
            self.stats,
        );
        img.max_vs = self.max_vs;
        img.max_stable = self.max_stable;
        // The live table is a hash map, so the export sorts by payload to
        // reach the canonical entry order the image contract requires.
        // Counts are carried as a single `(Time::MIN, n)` bucket — R2 has no
        // per-occurrence `Ve` to remember, only multiplicities at `max_vs`.
        let mut entries: Vec<crate::state::StateEntry<P>> = self
            .at_max_vs
            .iter()
            .map(|(p, c)| {
                let mut per_input: Vec<(u32, Vec<(Time, u64)>)> = c
                    .per_input
                    .iter()
                    .map(|&(id, n)| (id, vec![(Time::MIN, n)]))
                    .collect();
                per_input.sort_by_key(|e| e.0);
                crate::state::StateEntry {
                    vs: self.max_vs,
                    payload: p.clone(),
                    per_input,
                    output: if c.out > 0 {
                        vec![(Time::MIN, c.out)]
                    } else {
                        Vec::new()
                    },
                }
            })
            .collect();
        entries.sort_by(|a, b| a.payload.cmp(&b.payload));
        img.entries = entries;
        Some(img)
    }

    fn restore_state(&mut self, image: crate::state::MergeStateImage<P>) -> bool {
        if image.kind != crate::state::VariantKind::R2 {
            return false;
        }
        self.stats = image.apply_common(&mut self.inputs, &mut self.per_input);
        self.max_vs = image.max_vs;
        self.max_stable = image.max_stable;
        self.payload_bytes = image.entries.iter().map(|e| e.payload.heap_bytes()).sum();
        self.at_max_vs = image
            .entries
            .iter()
            .map(|e| {
                (
                    e.payload.clone(),
                    Counts {
                        per_input: e
                            .per_input
                            .iter()
                            .map(|(id, m)| (*id, m.first().map_or(0, |&(_, n)| n)))
                            .collect(),
                        out: e.output.first().map_or(0, |&(_, n)| n),
                    },
                )
            })
            .collect();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_vs_different_orders_merge_cleanly() {
        // Grouped aggregation: per-group results at Vs=1, opposite orders.
        let mut lm = LMergeR2::new(2);
        let mut out = Vec::new();
        lm.push(StreamId(0), &Element::insert("g1", 1, 5), &mut out);
        lm.push(StreamId(1), &Element::insert("g2", 1, 5), &mut out); // new payload!
        lm.push(StreamId(1), &Element::insert("g1", 1, 5), &mut out); // dup
        lm.push(StreamId(0), &Element::insert("g2", 1, 5), &mut out); // dup
        assert_eq!(
            out,
            vec![Element::insert("g1", 1, 5), Element::insert("g2", 1, 5)]
        );
        assert_eq!(lm.stats().dropped, 2);
    }

    #[test]
    fn new_vs_clears_hash() {
        let mut lm = LMergeR2::new(1);
        let mut out = Vec::new();
        lm.push(StreamId(0), &Element::insert("g1", 1, 5), &mut out);
        lm.push(StreamId(0), &Element::insert("g1", 2, 6), &mut out);
        assert_eq!(out.len(), 2, "same payload at a later Vs is a new event");
    }

    #[test]
    fn stale_insert_dropped() {
        let mut lm = LMergeR2::new(2);
        let mut out = Vec::new();
        lm.push(StreamId(0), &Element::insert("a", 5, 9), &mut out);
        lm.push(StreamId(1), &Element::insert("b", 4, 9), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn memory_tracks_payloads_at_max_vs() {
        use lmerge_temporal::Value;
        let mut lm = LMergeR2::new(1);
        let mut out = Vec::new();
        let m0 = lm.memory_bytes();
        for k in 0..10 {
            lm.push(
                StreamId(0),
                &Element::insert(Value::synthetic(k, 1000), 1, 50),
                &mut out,
            );
        }
        assert!(lm.memory_bytes() >= m0 + 10_000, "10 payloads retained");
        // Advancing Vs releases them.
        lm.push(
            StreamId(0),
            &Element::insert(Value::synthetic(99, 1000), 2, 50),
            &mut out,
        );
        assert!(lm.memory_bytes() < m0 + 10_000);
    }

    #[test]
    fn stable_behaviour_matches_r0() {
        let mut lm: LMergeR2<&str> = LMergeR2::new(2);
        let mut out = Vec::new();
        lm.push(StreamId(0), &Element::stable(5), &mut out);
        lm.push(StreamId(1), &Element::stable(5), &mut out);
        assert_eq!(out, vec![Element::stable(5)]);
    }
}

#[cfg(test)]
mod duplicate_relaxation_tests {
    use super::*;

    #[test]
    fn duplicate_events_at_one_timestamp_are_preserved() {
        // Two genuine occurrences of the same payload at the same Vs.
        let mut lm = LMergeR2::new(2);
        let mut out = Vec::new();
        for s in 0..2u32 {
            lm.push(StreamId(s), &Element::insert("A", 1, 5), &mut out);
            lm.push(StreamId(s), &Element::insert("A", 1, 5), &mut out);
        }
        assert_eq!(out.len(), 2, "two occurrences, not one, not four");
    }

    #[test]
    fn asymmetric_duplicate_counts_follow_the_maximum() {
        let mut lm = LMergeR2::new(2);
        let mut out = Vec::new();
        lm.push(StreamId(0), &Element::insert("A", 1, 5), &mut out);
        lm.push(StreamId(1), &Element::insert("A", 1, 5), &mut out); // dup
        lm.push(StreamId(1), &Element::insert("A", 1, 5), &mut out); // 2nd occurrence
        lm.push(StreamId(1), &Element::insert("A", 1, 5), &mut out); // 3rd occurrence
        lm.push(StreamId(0), &Element::insert("A", 1, 5), &mut out); // dup of 2nd
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn counts_reset_on_new_timestamp() {
        let mut lm = LMergeR2::new(1);
        let mut out = Vec::new();
        lm.push(StreamId(0), &Element::insert("A", 1, 5), &mut out);
        lm.push(StreamId(0), &Element::insert("A", 1, 5), &mut out);
        lm.push(StreamId(0), &Element::insert("A", 2, 6), &mut out);
        lm.push(StreamId(0), &Element::insert("A", 2, 6), &mut out);
        assert_eq!(out.len(), 4, "each timestamp counts separately");
    }
}
