//! The **Logical Merge (LMerge)** operator (Sections IV and V of the paper).
//!
//! LMerge takes multiple *physically divergent but logically consistent*
//! input streams and emits a single stream compatible with all of them. This
//! crate implements the paper's full algorithm spectrum:
//!
//! | Variant | Paper case | State | Module |
//! |---------|-----------|-------|--------|
//! | [`LMergeR0`] | R0: insert-only, strictly increasing `Vs` | `O(1)` | [`r0`] |
//! | [`LMergeR1`] | R1: insert-only, non-decreasing, deterministic ties | `O(s)` | [`r1`] |
//! | [`LMergeR2`] | R2: insert-only, non-decreasing, `(Vs, P)` key | `O(g·p)` | [`r2`] |
//! | [`LMergeR3`] | R3: all elements, any order, `(Vs, P)` key — the `in2t` index | `O(w(p+s))` | [`r3`] |
//! | [`LMergeR3Naive`] | the paper's `LMR3−` baseline (per-input indexes) | `O(w·p·s)` | [`r3_naive`] |
//! | [`LMergeR4`] | R4: no restrictions (multiset TDB) — the `in3t` index | `O(w(p+s·d))` | [`r4`] |
//!
//! All variants implement the [`LogicalMerge`] trait: feed elements with
//! [`LogicalMerge::push`], harvest output elements from the supplied vector.
//! The operators are pure deterministic state machines — wall-clock free —
//! so the engine can drive them under virtual time and the tests can check
//! every output prefix against the temporal crate's compatibility oracle.
//!
//! Policies (Section V-A) are configured via [`policy::MergePolicy`];
//! dynamic attachment/detachment of inputs (Section V-B) via
//! [`LogicalMerge::attach`]/[`LogicalMerge::detach`]; feedback-driven
//! fast-forward (Section V-D) via [`LogicalMerge::feedback_point`].

pub mod api;
pub mod det;
pub mod hash;
pub mod in2t;
pub mod in3t;
pub mod inputs;
pub mod mem;
pub mod merge;
pub mod policy;
pub mod r0;
pub mod r1;
pub mod r2;
pub mod r3;
pub mod r3_naive;
pub mod r4;
pub mod select;
pub mod shard;
pub mod spsc;
pub mod state;
pub mod stats;

pub use api::{BatchMeta, InputHealth, LogicalMerge};
pub use det::{DetBuildHasher, DetHashMap};
pub use hash::{fnv1a, Fnv1a};
pub use in2t::SweepAction;
pub use inputs::{HealthTransitions, InputState, Inputs};
pub use mem::{btree_bytes, hash_table_bytes};
pub use merge::{merge_streams, Interleave};
pub use policy::{AdjustPolicy, InsertPolicy, MergePolicy, RobustnessPolicy, StablePolicy};
pub use r0::LMergeR0;
pub use r1::LMergeR1;
pub use r2::LMergeR2;
pub use r3::LMergeR3;
pub use r3_naive::LMergeR3Naive;
pub use r4::LMergeR4;
pub use select::{new_for_level, new_for_properties};
pub use shard::{queue_bytes, shard_of, ShardConfig, ShardedLMerge};
pub use state::{
    CountersImage, InputStateImage, MergeStateImage, SpillHandler, StateEntry, VariantKind,
};
pub use stats::{InputCounters, MergeStats, PerInput};
