//! Byte encodings for payload types that can be made durable.
//!
//! [`DurablePayload`] extends the core [`Payload`] bound with a canonical
//! little-endian byte encoding. Because every image is stored in canonical
//! `(Vs, payload)` order before encoding, two logically equal states
//! always produce byte-identical files — the property the recovery
//! conformance tests lean on.

use crate::codec::{put_count, Cursor, DurableError};
use bytes::Bytes;
use lmerge_temporal::{Payload, Value};

/// A payload with a stable, canonical byte encoding.
pub trait DurablePayload: Payload {
    /// Append the canonical encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decode one payload, consuming exactly the bytes `encode` wrote.
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, DurableError>;
}

impl DurablePayload for Value {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.key.to_le_bytes());
        put_count(buf, self.body.len());
        buf.extend_from_slice(&self.body);
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<Value, DurableError> {
        let key = cur.i32()?;
        let len = cur.count(1)?;
        let body = Bytes::copy_from_slice(cur.take(len)?);
        Ok(Value { key, body })
    }
}

impl DurablePayload for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_count(buf, self.len());
        buf.extend_from_slice(self.as_bytes());
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<String, DurableError> {
        let len = cur.count(1)?;
        let raw = cur.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| DurableError::Corrupt("non-UTF-8 string"))
    }
}

impl DurablePayload for i32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<i32, DurableError> {
        cur.i32()
    }
}

impl DurablePayload for i64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<i64, DurableError> {
        cur.i64()
    }
}

impl DurablePayload for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<u32, DurableError> {
        cur.u32()
    }
}

impl DurablePayload for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<u64, DurableError> {
        cur.u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<P: DurablePayload>(p: P) {
        let mut buf = Vec::new();
        p.encode(&mut buf);
        let mut cur = Cursor::new(&buf);
        assert_eq!(P::decode(&mut cur).unwrap(), p);
        assert!(
            cur.is_empty(),
            "decode must consume exactly what encode wrote"
        );
    }

    #[test]
    fn payloads_round_trip() {
        round_trip(Value {
            key: -7,
            body: Bytes::copy_from_slice(b"body bytes"),
        });
        round_trip(Value {
            key: 0,
            body: Bytes::new(),
        });
        round_trip(String::from("ανδρος"));
        round_trip(-42i32);
        round_trip(i64::MIN);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
    }

    #[test]
    fn bad_utf8_is_a_typed_error() {
        let mut buf = Vec::new();
        put_count(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut cur = Cursor::new(&buf);
        assert!(matches!(
            String::decode(&mut cur),
            Err(DurableError::Corrupt(_))
        ));
    }
}
