//! Crash-safe file publication shared by the checkpoint and spill stores.

use crate::codec::DurableError;
use std::fs::File;
use std::io::Write;
use std::path::Path;

/// Write `bytes` to `path` so that a reader never observes a torn file and
/// a completed call survives power loss:
///
/// 1. write to a `<name>.tmp` sibling,
/// 2. `fsync` the temp file (data durable before it is named),
/// 3. rename over `path` (atomic publication),
/// 4. `fsync` the directory (the rename itself durable).
///
/// Without steps 2 and 4 the rename can reach disk before the data does,
/// and an OS crash then leaves a "latest" file full of zeros — `.tmp` +
/// rename alone only protects against *process* crashes. A crash mid-write
/// still leaves at worst a stray `.tmp` sibling, which
/// [`remove_temp_files`] clears on the next store open.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), DurableError> {
    let mut tmp_name = path
        .file_name()
        .expect("write_atomic: path has a file name")
        .to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        fsync_dir(dir)?;
    }
    Ok(())
}

#[cfg(unix)]
fn fsync_dir(dir: &Path) -> Result<(), DurableError> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

#[cfg(not(unix))]
fn fsync_dir(_dir: &Path) -> Result<(), DurableError> {
    // Directories cannot be opened for syncing on non-unix platforms; the
    // rename is still atomic, just not durably ordered.
    Ok(())
}

/// Delete stray `*.tmp` files left by a crash mid-[`write_atomic`].
pub(crate) fn remove_temp_files(dir: &Path) -> Result<(), DurableError> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if entry
            .file_name()
            .to_str()
            .is_some_and(|n| n.ends_with(".tmp"))
        {
            std::fs::remove_file(entry.path())?;
        }
    }
    Ok(())
}
