//! Durable merge state: checkpoint/restore and log-structured spill.
//!
//! The paper's LMerge operator makes physically independent replicas
//! interchangeable *while the process lives*; this crate extends the
//! guarantee across process death. It persists the canonical state images
//! exported by `lmerge-core` ([`lmerge_core::MergeStateImage`]) together
//! with the executor's scheduling cut ([`lmerge_engine::ExecutorImage`])
//! as versioned, checksummed files, and spills half-frozen state demoted
//! by robustness bounds as sorted on-disk runs instead of dropping it.
//!
//! Three layers:
//!
//! * [`codec`] — the file envelope (magic, version, kind, FNV-1a
//!   checksum) and a bounds-checked cursor; corruption always surfaces as
//!   a typed [`DurableError`], never a panic.
//! * [`checkpoint`] — [`CheckpointStore`]: a chain of full snapshots and
//!   index-diff deltas; [`DurableCheckpointSink`] plugs the store into the
//!   executor's [`lmerge_engine::CheckpointSink`] boundary.
//! * [`spill`] — [`SpillStore`]: append-only sorted runs, k-way merged on
//!   read through a [`std::collections::BinaryHeap`];
//!   [`FileSpillHandler`] plugs it into `lmerge-core`'s
//!   [`lmerge_core::SpillHandler`] demotion hook.
//!
//! Recovery composes the pieces: [`CheckpointStore::load_latest`] yields a
//! [`lmerge_engine::RunImage`]; `LogicalMerge::restore_state` rebuilds the
//! operator; `MergeRun::resumed` rebuilds the schedule; and for networked
//! inputs the image's transport cursors seed the ingest server's resume
//! handshake so each session replays exactly from its acked prefix.

pub mod checkpoint;
pub mod codec;
mod fsutil;
pub mod image;
pub mod payload;
pub mod spill;

pub use checkpoint::{
    CheckpointStore, CursorSource, DurableCheckpointSink, EgressSource, Recovery,
    DEFAULT_SNAPSHOT_EVERY,
};
pub use codec::{envelope, open_envelope, Cursor, DurableError, FileKind, MAGIC, VERSION};
pub use image::{get_merge_image, get_run_image, put_merge_image, put_run_image};
pub use payload::DurablePayload;
pub use spill::{FileSpillHandler, MergedSpill, SpillStore};
