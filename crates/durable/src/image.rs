//! Binary encodings for merge/executor state images.
//!
//! Layouts are little-endian and positional (no field tags): the envelope
//! version in [`crate::codec`] is the compatibility gate. Because
//! [`MergeStateImage`] is canonical — entries sorted by `(Vs, payload)`,
//! multisets by `(input, Ve)` — equal logical state encodes to identical
//! bytes, and the round-trip property tests can compare encodings
//! directly.

use crate::codec::{put_count, Cursor, DurableError};
use crate::payload::DurablePayload;
use lmerge_core::{CountersImage, InputStateImage, MergeStateImage, StateEntry, VariantKind};
use lmerge_engine::{EgressImage, ExecutorImage, RunImage};
use lmerge_temporal::{Time, VTime};

/// Sharded images nest per-shard images; one level is all the core layer
/// ever produces, so anything deeper than this is corruption, not data.
const MAX_SHARD_DEPTH: u32 = 4;

fn put_time(buf: &mut Vec<u8>, t: Time) {
    buf.extend_from_slice(&t.0.to_le_bytes());
}

fn get_time(cur: &mut Cursor<'_>) -> Result<Time, DurableError> {
    Ok(Time(cur.i64()?))
}

fn put_u64s(buf: &mut Vec<u8>, xs: &[u64]) {
    put_count(buf, xs.len());
    for x in xs {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

fn get_u64s(cur: &mut Cursor<'_>) -> Result<Vec<u64>, DurableError> {
    let n = cur.count(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(cur.u64()?);
    }
    Ok(out)
}

fn put_multiset(buf: &mut Vec<u8>, ms: &[(Time, u64)]) {
    put_count(buf, ms.len());
    for (ve, n) in ms {
        put_time(buf, *ve);
        buf.extend_from_slice(&n.to_le_bytes());
    }
}

fn get_multiset(cur: &mut Cursor<'_>) -> Result<Vec<(Time, u64)>, DurableError> {
    let n = cur.count(16)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let ve = get_time(cur)?;
        out.push((ve, cur.u64()?));
    }
    Ok(out)
}

/// Append one [`StateEntry`].
pub fn put_entry<P: DurablePayload>(buf: &mut Vec<u8>, e: &StateEntry<P>) {
    put_time(buf, e.vs);
    e.payload.encode(buf);
    put_count(buf, e.per_input.len());
    for (input, ms) in &e.per_input {
        buf.extend_from_slice(&input.to_le_bytes());
        put_multiset(buf, ms);
    }
    put_multiset(buf, &e.output);
}

/// Decode one [`StateEntry`].
pub fn get_entry<P: DurablePayload>(cur: &mut Cursor<'_>) -> Result<StateEntry<P>, DurableError> {
    let vs = get_time(cur)?;
    let payload = P::decode(cur)?;
    let n = cur.count(8)?;
    let mut per_input = Vec::with_capacity(n);
    for _ in 0..n {
        let input = cur.u32()?;
        per_input.push((input, get_multiset(cur)?));
    }
    let output = get_multiset(cur)?;
    Ok(StateEntry {
        vs,
        payload,
        per_input,
        output,
    })
}

fn put_entries<P: DurablePayload>(buf: &mut Vec<u8>, es: &[StateEntry<P>]) {
    put_count(buf, es.len());
    for e in es {
        put_entry(buf, e);
    }
}

fn get_entries<P: DurablePayload>(
    cur: &mut Cursor<'_>,
) -> Result<Vec<StateEntry<P>>, DurableError> {
    let n = cur.count(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_entry(cur)?);
    }
    Ok(out)
}

/// Append a full [`MergeStateImage`] (recursing into shard images).
pub fn put_merge_image<P: DurablePayload>(buf: &mut Vec<u8>, img: &MergeStateImage<P>) {
    buf.push(img.kind.tag());
    put_time(buf, img.max_vs);
    put_time(buf, img.max_stable);
    put_time(buf, img.watermark);
    match img.leader {
        Some(l) => {
            buf.push(1);
            buf.extend_from_slice(&l.to_le_bytes());
        }
        None => buf.push(0),
    }
    put_u64s(buf, &img.same_vs_count);
    put_u64s(buf, &img.live_entries);
    put_count(buf, img.input_states.len());
    for st in &img.input_states {
        match st {
            InputStateImage::Active => buf.push(0),
            InputStateImage::Joining(t) => {
                buf.push(1);
                put_time(buf, *t);
            }
            InputStateImage::Quarantined => buf.push(2),
            InputStateImage::Left => buf.push(3),
        }
    }
    for x in [img.transitions.0, img.transitions.1, img.transitions.2] {
        buf.extend_from_slice(&x.to_le_bytes());
    }
    put_count(buf, img.counters.len());
    for c in &img.counters {
        buf.extend_from_slice(&c.inserts.to_le_bytes());
        buf.extend_from_slice(&c.adjusts.to_le_bytes());
        buf.extend_from_slice(&c.stables.to_le_bytes());
        put_time(buf, c.last_stable);
    }
    let (a, b, c, d, e, f, g) = img.stats;
    for x in [a, b, c, d, e, f, g] {
        buf.extend_from_slice(&x.to_le_bytes());
    }
    put_entries(buf, &img.entries);
    put_count(buf, img.input_indexes.len());
    for idx in &img.input_indexes {
        put_entries(buf, idx);
    }
    put_count(buf, img.shards.len());
    for shard in &img.shards {
        put_merge_image(buf, shard);
    }
}

/// Decode a full [`MergeStateImage`].
pub fn get_merge_image<P: DurablePayload>(
    cur: &mut Cursor<'_>,
) -> Result<MergeStateImage<P>, DurableError> {
    get_merge_image_at(cur, 0)
}

fn get_merge_image_at<P: DurablePayload>(
    cur: &mut Cursor<'_>,
    depth: u32,
) -> Result<MergeStateImage<P>, DurableError> {
    if depth > MAX_SHARD_DEPTH {
        return Err(DurableError::Corrupt("shard nesting too deep"));
    }
    let tag = cur.u8()?;
    let kind = VariantKind::from_tag(tag).ok_or(DurableError::BadTag(tag))?;
    let mut img = MergeStateImage::empty(kind);
    img.max_vs = get_time(cur)?;
    img.max_stable = get_time(cur)?;
    img.watermark = get_time(cur)?;
    img.leader = match cur.u8()? {
        0 => None,
        1 => Some(cur.u32()?),
        _ => return Err(DurableError::Corrupt("bad leader flag")),
    };
    img.same_vs_count = get_u64s(cur)?;
    img.live_entries = get_u64s(cur)?;
    let n = cur.count(1)?;
    img.input_states = Vec::with_capacity(n);
    for _ in 0..n {
        img.input_states.push(match cur.u8()? {
            0 => InputStateImage::Active,
            1 => InputStateImage::Joining(get_time(cur)?),
            2 => InputStateImage::Quarantined,
            3 => InputStateImage::Left,
            _ => return Err(DurableError::Corrupt("bad input state tag")),
        });
    }
    img.transitions = (cur.u64()?, cur.u64()?, cur.u64()?);
    let n = cur.count(32)?;
    img.counters = Vec::with_capacity(n);
    for _ in 0..n {
        img.counters.push(CountersImage {
            inserts: cur.u64()?,
            adjusts: cur.u64()?,
            stables: cur.u64()?,
            last_stable: get_time(cur)?,
        });
    }
    img.stats = (
        cur.u64()?,
        cur.u64()?,
        cur.u64()?,
        cur.u64()?,
        cur.u64()?,
        cur.u64()?,
        cur.u64()?,
    );
    img.entries = get_entries(cur)?;
    let n = cur.count(4)?;
    img.input_indexes = Vec::with_capacity(n);
    for _ in 0..n {
        img.input_indexes.push(get_entries(cur)?);
    }
    let n = cur.count(1)?;
    img.shards = Vec::with_capacity(n);
    for _ in 0..n {
        img.shards.push(get_merge_image_at(cur, depth + 1)?);
    }
    Ok(img)
}

/// Append an [`ExecutorImage`].
pub fn put_exec_image(buf: &mut Vec<u8>, img: &ExecutorImage) {
    buf.extend_from_slice(&img.lmerge_ready.0.to_le_bytes());
    buf.extend_from_slice(&img.delivered.to_le_bytes());
    buf.extend_from_slice(&img.seq.to_le_bytes());
    put_time(buf, img.last_feedback);
    put_count(buf, img.input_stable_hw.len());
    for t in &img.input_stable_hw {
        put_time(buf, *t);
    }
    put_time(buf, img.output_stable_hw);
    put_u64s(buf, &img.pulls);
    put_count(buf, img.staged.len());
    for s in &img.staged {
        match s {
            Some((at, seq)) => {
                buf.push(1);
                buf.extend_from_slice(&at.0.to_le_bytes());
                buf.extend_from_slice(&seq.to_le_bytes());
            }
            None => buf.push(0),
        }
    }
}

/// Decode an [`ExecutorImage`].
pub fn get_exec_image(cur: &mut Cursor<'_>) -> Result<ExecutorImage, DurableError> {
    let lmerge_ready = VTime(cur.u64()?);
    let delivered = cur.u64()?;
    let seq = cur.u64()?;
    let last_feedback = get_time(cur)?;
    let n = cur.count(8)?;
    let mut input_stable_hw = Vec::with_capacity(n);
    for _ in 0..n {
        input_stable_hw.push(get_time(cur)?);
    }
    let output_stable_hw = get_time(cur)?;
    let pulls = get_u64s(cur)?;
    let n = cur.count(1)?;
    let mut staged = Vec::with_capacity(n);
    for _ in 0..n {
        staged.push(match cur.u8()? {
            0 => None,
            1 => Some((VTime(cur.u64()?), cur.u64()?)),
            _ => return Err(DurableError::Corrupt("bad staged flag")),
        });
    }
    Ok(ExecutorImage {
        lmerge_ready,
        delivered,
        seq,
        last_feedback,
        input_stable_hw,
        output_stable_hw,
        pulls,
        staged,
    })
}

/// Append an [`EgressImage`]: subscriber cursors plus the retained
/// wire-encoded output tail (already bytes — stored verbatim).
pub fn put_egress_image(buf: &mut Vec<u8>, img: &EgressImage) {
    put_count(buf, img.cursors.len());
    for (subscriber, acked) in &img.cursors {
        buf.extend_from_slice(&subscriber.to_le_bytes());
        buf.extend_from_slice(&acked.to_le_bytes());
    }
    buf.extend_from_slice(&img.base_seq.to_le_bytes());
    buf.extend_from_slice(&img.next_seq.to_le_bytes());
    put_time(buf, img.stable);
    put_count(buf, img.frames.len());
    buf.extend_from_slice(&img.frames);
}

/// Decode an [`EgressImage`].
pub fn get_egress_image(cur: &mut Cursor<'_>) -> Result<EgressImage, DurableError> {
    let n = cur.count(16)?;
    let mut cursors = Vec::with_capacity(n);
    for _ in 0..n {
        let subscriber = cur.u64()?;
        cursors.push((subscriber, cur.u64()?));
    }
    let base_seq = cur.u64()?;
    let next_seq = cur.u64()?;
    let stable = get_time(cur)?;
    let n = cur.count(1)?;
    let frames = cur.take(n)?.to_vec();
    Ok(EgressImage {
        cursors,
        base_seq,
        next_seq,
        stable,
        frames,
    })
}

/// Append a [`RunImage`]: merge image, executor image, net cursors, and
/// the egress/broadcast image.
pub fn put_run_image<P: DurablePayload>(buf: &mut Vec<u8>, img: &RunImage<P>) {
    put_merge_image(buf, &img.merge);
    put_exec_image(buf, &img.exec);
    put_count(buf, img.cursors.len());
    for (next_seq, acked) in &img.cursors {
        buf.extend_from_slice(&next_seq.to_le_bytes());
        buf.extend_from_slice(&acked.to_le_bytes());
    }
    put_egress_image(buf, &img.egress);
}

/// Decode a [`RunImage`].
pub fn get_run_image<P: DurablePayload>(cur: &mut Cursor<'_>) -> Result<RunImage<P>, DurableError> {
    let merge = get_merge_image(cur)?;
    let exec = get_exec_image(cur)?;
    let n = cur.count(16)?;
    let mut cursors = Vec::with_capacity(n);
    for _ in 0..n {
        let next_seq = cur.u64()?;
        cursors.push((next_seq, cur.i64()?));
    }
    let egress = get_egress_image(cur)?;
    Ok(RunImage {
        merge,
        exec,
        cursors,
        egress,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_entry(k: i32, vs: i64) -> StateEntry<i32> {
        StateEntry {
            vs: Time(vs),
            payload: k,
            per_input: vec![
                (0, vec![(Time(vs + 5), 1)]),
                (2, vec![(Time(vs + 5), 2), (Time(vs + 9), 1)]),
            ],
            output: vec![(Time(vs + 5), 1)],
        }
    }

    pub(crate) fn sample_image() -> MergeStateImage<i32> {
        let mut img = MergeStateImage::empty(VariantKind::R4);
        img.max_vs = Time(41);
        img.max_stable = Time(17);
        img.watermark = Time(11);
        img.leader = Some(1);
        img.same_vs_count = vec![3, 0, 9];
        img.live_entries = vec![2, 2, 1];
        img.input_states = vec![
            InputStateImage::Active,
            InputStateImage::Joining(Time(30)),
            InputStateImage::Quarantined,
            InputStateImage::Left,
        ];
        img.transitions = (2, 1, 1);
        img.counters = vec![CountersImage {
            inserts: 10,
            adjusts: 3,
            stables: 4,
            last_stable: Time(17),
        }];
        img.stats = (10, 3, 4, 9, 2, 3, 1);
        img.entries = vec![sample_entry(7, 20), sample_entry(9, 25)];
        img.input_indexes = vec![vec![sample_entry(7, 20)], vec![]];
        img
    }

    #[test]
    fn merge_image_round_trips_including_shards() {
        let mut outer: MergeStateImage<i32> = MergeStateImage::empty(VariantKind::Sharded);
        outer.watermark = Time(11);
        outer.shards = vec![sample_image(), MergeStateImage::empty(VariantKind::R4)];
        let mut buf = Vec::new();
        put_merge_image(&mut buf, &outer);
        let mut cur = Cursor::new(&buf);
        let back = get_merge_image::<i32>(&mut cur).unwrap();
        assert!(cur.is_empty());
        assert_eq!(back, outer);
        // Canonical property: re-encoding the decoded image is byte-identical.
        let mut buf2 = Vec::new();
        put_merge_image(&mut buf2, &back);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn run_image_round_trips() {
        let run = RunImage {
            merge: sample_image(),
            exec: ExecutorImage {
                lmerge_ready: VTime(1234),
                delivered: 77,
                seq: 91,
                last_feedback: Time(15),
                input_stable_hw: vec![Time(17), Time(13)],
                output_stable_hw: Time(13),
                pulls: vec![40, 37],
                staged: vec![Some((VTime(1300), 90)), None],
            },
            cursors: vec![(40, 17), (37, 13)],
            egress: EgressImage {
                cursors: vec![(7, 12), (1001, 9)],
                base_seq: 9,
                next_seq: 14,
                stable: Time(13),
                frames: vec![0xAB; 40],
            },
        };
        let mut buf = Vec::new();
        put_run_image(&mut buf, &run);
        let mut cur = Cursor::new(&buf);
        let back = get_run_image::<i32>(&mut cur).unwrap();
        assert!(cur.is_empty());
        assert_eq!(back.merge, run.merge);
        assert_eq!(back.exec, run.exec);
        assert_eq!(back.cursors, run.cursors);
        assert_eq!(back.egress, run.egress);
    }

    #[test]
    fn excessive_shard_depth_is_rejected() {
        // Hand-build a chain of Sharded images deeper than the guard.
        let mut img: MergeStateImage<i32> = MergeStateImage::empty(VariantKind::R3);
        for _ in 0..(MAX_SHARD_DEPTH + 2) {
            let mut outer = MergeStateImage::empty(VariantKind::Sharded);
            outer.shards = vec![img];
            img = outer;
        }
        let mut buf = Vec::new();
        put_merge_image(&mut buf, &img);
        let mut cur = Cursor::new(&buf);
        assert!(matches!(
            get_merge_image::<i32>(&mut cur),
            Err(DurableError::Corrupt("shard nesting too deep"))
        ));
    }
}
