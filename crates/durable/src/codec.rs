//! The durable file codec: framing, primitive readers, and typed errors.
//!
//! Every durable file — checkpoint snapshot, checkpoint delta, spill run —
//! is one [`envelope`]: a fixed header (magic, version, kind), a
//! length-prefixed payload, and a trailing FNV-1a checksum of the payload
//! bytes, the same checksum discipline `lmerge-net` applies to every wire
//! frame. Decoding is defensive end to end: every read is bounds-checked
//! through [`Cursor`], every length is validated against the bytes that
//! remain, and any corruption surfaces as a typed [`DurableError`] — a
//! truncated, bit-flipped, or adversarial file must never panic the
//! reader.

use lmerge_core::hash::fnv1a;

/// Magic bytes opening every durable file.
pub const MAGIC: [u8; 4] = *b"LMCK";

/// Current format version. v2 appended the egress/broadcast image
/// (subscriber cursors + retained output tail) to every run image.
pub const VERSION: u16 = 2;

/// What a durable file contains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// A full run image.
    Snapshot,
    /// An incremental image: diffs against the previous checkpoint.
    Delta,
    /// One sorted run of spilled state entries.
    SpillRun,
}

impl FileKind {
    /// Stable numeric tag.
    pub fn tag(self) -> u8 {
        match self {
            FileKind::Snapshot => 1,
            FileKind::Delta => 2,
            FileKind::SpillRun => 3,
        }
    }

    /// Inverse of [`tag`](FileKind::tag).
    pub fn from_tag(tag: u8) -> Option<FileKind> {
        Some(match tag {
            1 => FileKind::Snapshot,
            2 => FileKind::Delta,
            3 => FileKind::SpillRun,
            _ => return None,
        })
    }
}

/// Why a durable file could not be read (or written).
#[derive(Debug)]
pub enum DurableError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not open with [`MAGIC`].
    BadMagic,
    /// The file's format version is not one this build understands.
    BadVersion(u16),
    /// The file's kind tag (or an inner type tag) is unknown.
    BadTag(u8),
    /// The file ends before the structure it promises.
    Truncated,
    /// The payload bytes do not hash to the recorded checksum.
    Checksum {
        /// The checksum recorded in the file.
        expected: u64,
        /// The checksum of the bytes actually present.
        actual: u64,
    },
    /// A structural invariant does not hold (impossible length, non-UTF-8
    /// string, wrong image kind, ...).
    Corrupt(&'static str),
    /// The checkpoint directory holds no restorable checkpoint.
    NoCheckpoint,
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "io error: {e}"),
            DurableError::BadMagic => write!(f, "not a durable file (bad magic)"),
            DurableError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DurableError::BadTag(t) => write!(f, "unknown type tag {t}"),
            DurableError::Truncated => write!(f, "file truncated"),
            DurableError::Checksum { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: recorded {expected:#x}, computed {actual:#x}"
                )
            }
            DurableError::Corrupt(what) => write!(f, "corrupt file: {what}"),
            DurableError::NoCheckpoint => write!(f, "no checkpoint found"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> DurableError {
        DurableError::Io(e)
    }
}

/// A bounds-checked little-endian reader over a byte slice.
#[derive(Clone, Debug)]
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `data`.
    pub fn new(data: &'a [u8]) -> Cursor<'a> {
        Cursor { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consume exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DurableError> {
        if self.remaining() < n {
            return Err(DurableError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, DurableError> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DurableError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DurableError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DurableError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Little-endian `i32`.
    pub fn i32(&mut self) -> Result<i32, DurableError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, DurableError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A `u32` element count, sanity-checked against the bytes remaining
    /// (`min_elem_bytes` per element) so a corrupt length cannot drive an
    /// unbounded allocation.
    pub fn count(&mut self, min_elem_bytes: usize) -> Result<usize, DurableError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(DurableError::Corrupt("length exceeds file size"));
        }
        Ok(n)
    }
}

/// Append a `u32` length-prefixed count.
pub fn put_count(buf: &mut Vec<u8>, n: usize) {
    buf.extend_from_slice(&(n as u32).to_le_bytes());
}

/// Wrap `payload` in the durable envelope: header, length, payload,
/// trailing FNV-1a checksum.
pub fn envelope(kind: FileKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind.tag());
    out.push(0); // reserved
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out
}

/// Open an envelope: verify magic, version, kind tag, length, and
/// checksum, returning the payload bytes.
pub fn open_envelope(data: &[u8]) -> Result<(FileKind, &[u8]), DurableError> {
    let mut cur = Cursor::new(data);
    if cur.take(4)? != MAGIC {
        return Err(DurableError::BadMagic);
    }
    let version = cur.u16()?;
    if version != VERSION {
        return Err(DurableError::BadVersion(version));
    }
    let tag = cur.u8()?;
    let kind = FileKind::from_tag(tag).ok_or(DurableError::BadTag(tag))?;
    if cur.u8()? != 0 {
        // The reserved byte is outside the payload checksum, so it must be
        // pinned here or corruption in it would be silently accepted.
        return Err(DurableError::Corrupt("nonzero reserved header byte"));
    }
    let len = cur.u64()? as usize;
    if len != cur.remaining().saturating_sub(8) {
        return Err(DurableError::Truncated);
    }
    let payload = cur.take(len)?;
    let expected = cur.u64()?;
    let actual = fnv1a(payload);
    if expected != actual {
        return Err(DurableError::Checksum { expected, actual });
    }
    Ok((kind, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_round_trips() {
        let body = b"hello durable world".to_vec();
        let file = envelope(FileKind::Snapshot, &body);
        let (kind, payload) = open_envelope(&file).unwrap();
        assert_eq!(kind, FileKind::Snapshot);
        assert_eq!(payload, &body[..]);
    }

    #[test]
    fn corruption_yields_typed_errors_not_panics() {
        let file = envelope(FileKind::Delta, b"payload");
        // Flip a payload bit (payload starts after the 16-byte header):
        // checksum mismatch.
        let mut flipped = file.clone();
        flipped[18] ^= 0x40;
        assert!(matches!(
            open_envelope(&flipped),
            Err(DurableError::Checksum { .. })
        ));
        // Truncate anywhere: typed error.
        for cut in 0..file.len() {
            assert!(open_envelope(&file[..cut]).is_err(), "cut at {cut}");
        }
        // Wrong magic.
        let mut bad = file.clone();
        bad[0] = b'X';
        assert!(matches!(open_envelope(&bad), Err(DurableError::BadMagic)));
        // Future version.
        let mut newer = file.clone();
        newer[4] = 9;
        assert!(matches!(
            open_envelope(&newer),
            Err(DurableError::BadVersion(9))
        ));
        // Unknown kind tag.
        let mut unk = file;
        unk[6] = 99;
        assert!(matches!(open_envelope(&unk), Err(DurableError::BadTag(99))));
    }

    #[test]
    fn cursor_checks_every_read() {
        let mut cur = Cursor::new(&[1, 2, 3]);
        assert_eq!(cur.u8().unwrap(), 1);
        assert!(matches!(cur.u32(), Err(DurableError::Truncated)));
        // A huge claimed count is rejected before any allocation.
        let huge = u32::MAX.to_le_bytes();
        let mut cur = Cursor::new(&huge);
        assert!(matches!(cur.count(1), Err(DurableError::Corrupt(_))));
    }
}
