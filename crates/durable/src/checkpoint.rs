//! The checkpoint store: versioned snapshot + delta files on disk.
//!
//! A checkpoint directory holds a numbered chain of files:
//!
//! ```text
//! ck-00000000-snap.lmck     full RunImage
//! ck-00000001-delta.lmck    diff against checkpoint 0
//! ck-00000002-delta.lmck    diff against checkpoint 1
//! ck-00000003-snap.lmck     full RunImage (chain restarts)
//! ...
//! ```
//!
//! Every file is a checksummed [`crate::codec`] envelope, published
//! crash-safely (`.tmp` + fsync + rename + directory fsync, see
//! `crate::fsutil`) so neither a process kill nor a power loss can leave a
//! torn checkpoint — at worst a stray temp file, cleared on the next open.
//! A delta stores the executor image and the merge image's scalars in full
//! (they are tiny) plus, for each index in a fixed pre-order traversal
//! (shared entries, per-input indexes, then shards recursively), the keys
//! removed and the entries inserted-or-changed since the previous
//! checkpoint — computed by a sorted merge-walk over the canonical
//! `(Vs, payload)` order.
//!
//! [`CheckpointStore::load_latest`] restores the newest snapshot and
//! replays the deltas after it — defensively: a torn or missing file costs
//! only the chain suffix behind it. Recovery keeps the longest intact
//! prefix of the newest chain, falls back to an older snapshot chain when
//! the newest snapshot itself is unreadable, and surfaces what it skipped
//! as warnings ([`CheckpointStore::recover`]) instead of refusing to
//! restore at all.

use crate::codec::{envelope, open_envelope, put_count, Cursor, DurableError, FileKind};
use crate::fsutil::{remove_temp_files, write_atomic};
use crate::image::{
    get_egress_image, get_entry, get_exec_image, get_merge_image, get_run_image, put_egress_image,
    put_entry, put_exec_image, put_merge_image, put_run_image,
};
use crate::payload::DurablePayload;
use lmerge_core::{MergeStateImage, StateEntry};
use lmerge_engine::{CheckpointSave, CheckpointSink, EgressImage, RunImage};
use lmerge_temporal::Time;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// How many deltas to chain after a snapshot before forcing the next
/// snapshot. Bounds recovery replay work.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 4;

/// One index's changes between two checkpoints.
#[derive(Clone, Debug, PartialEq, Eq)]
struct IndexDiff<P> {
    /// `(Vs, payload)` keys present before, absent now.
    removed: Vec<(Time, P)>,
    /// Entries new or changed (full replacement value).
    upserts: Vec<StateEntry<P>>,
}

impl<P> Default for IndexDiff<P> {
    fn default() -> IndexDiff<P> {
        IndexDiff {
            removed: Vec::new(),
            upserts: Vec::new(),
        }
    }
}

/// Collect references to every entry index of an image in pre-order:
/// shared entries, then per-input indexes, then shards recursively.
fn indexes<P>(img: &MergeStateImage<P>) -> Vec<&Vec<StateEntry<P>>> {
    fn walk<'a, P>(img: &'a MergeStateImage<P>, out: &mut Vec<&'a Vec<StateEntry<P>>>) {
        out.push(&img.entries);
        for idx in &img.input_indexes {
            out.push(idx);
        }
        for shard in &img.shards {
            walk(shard, out);
        }
    }
    let mut out = Vec::new();
    walk(img, &mut out);
    out
}

/// Mutable counterpart of [`indexes`] — same traversal order.
fn indexes_mut<P>(img: &mut MergeStateImage<P>) -> Vec<&mut Vec<StateEntry<P>>> {
    fn walk<'a, P>(img: &'a mut MergeStateImage<P>, out: &mut Vec<&'a mut Vec<StateEntry<P>>>) {
        out.push(&mut img.entries);
        for idx in img.input_indexes.iter_mut() {
            out.push(idx);
        }
        for shard in img.shards.iter_mut() {
            walk(shard, out);
        }
    }
    let mut out = Vec::new();
    walk(img, &mut out);
    out
}

/// Sorted merge-walk over two canonical indexes, producing the diff.
fn diff_index<P: DurablePayload>(old: &[StateEntry<P>], new: &[StateEntry<P>]) -> IndexDiff<P> {
    let mut diff = IndexDiff::default();
    let (mut i, mut j) = (0, 0);
    while i < old.len() && j < new.len() {
        let ko = (&old[i].vs, &old[i].payload);
        let kn = (&new[j].vs, &new[j].payload);
        match ko.cmp(&kn) {
            std::cmp::Ordering::Less => {
                diff.removed.push((old[i].vs, old[i].payload.clone()));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                diff.upserts.push(new[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if old[i] != new[j] {
                    diff.upserts.push(new[j].clone());
                }
                i += 1;
                j += 1;
            }
        }
    }
    for e in &old[i..] {
        diff.removed.push((e.vs, e.payload.clone()));
    }
    for e in &new[j..] {
        diff.upserts.push(e.clone());
    }
    diff
}

/// Apply a diff to a base index, yielding the new canonical index.
fn apply_diff<P: DurablePayload>(
    base: &[StateEntry<P>],
    diff: &IndexDiff<P>,
) -> Vec<StateEntry<P>> {
    let mut map: BTreeMap<(Time, P), StateEntry<P>> = base
        .iter()
        .map(|e| ((e.vs, e.payload.clone()), e.clone()))
        .collect();
    for key in &diff.removed {
        map.remove(key);
    }
    for e in &diff.upserts {
        map.insert((e.vs, e.payload.clone()), e.clone());
    }
    map.into_values().collect()
}

/// A copy of `img` with every entry index emptied — the scalar "skeleton"
/// a delta stores in full.
fn skeleton<P: DurablePayload>(img: &MergeStateImage<P>) -> MergeStateImage<P> {
    let mut s = img.clone();
    for idx in indexes_mut(&mut s) {
        idx.clear();
    }
    s
}

/// Whether two images have the same index *structure* (per-input index
/// count and shard tree). Deltas only make sense between same-structure
/// images; the store falls back to a snapshot otherwise.
fn same_structure<P>(a: &MergeStateImage<P>, b: &MergeStateImage<P>) -> bool {
    a.input_indexes.len() == b.input_indexes.len()
        && a.shards.len() == b.shards.len()
        && a.shards
            .iter()
            .zip(&b.shards)
            .all(|(x, y)| same_structure(x, y))
}

fn encode_snapshot<P: DurablePayload>(image: &RunImage<P>) -> Vec<u8> {
    let mut payload = Vec::new();
    put_run_image(&mut payload, image);
    envelope(FileKind::Snapshot, &payload)
}

fn encode_delta<P: DurablePayload>(
    base_seq: u64,
    base: &RunImage<P>,
    new: &RunImage<P>,
) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&base_seq.to_le_bytes());
    put_exec_image(&mut payload, &new.exec);
    put_count(&mut payload, new.cursors.len());
    for (next_seq, acked) in &new.cursors {
        payload.extend_from_slice(&next_seq.to_le_bytes());
        payload.extend_from_slice(&acked.to_le_bytes());
    }
    // The egress image is stored in full: its retained tail is already a
    // compact byte log bounded by the subscribers' acked cursors.
    put_egress_image(&mut payload, &new.egress);
    put_merge_image(&mut payload, &skeleton(&new.merge));
    let old_idx = indexes(&base.merge);
    let new_idx = indexes(&new.merge);
    debug_assert_eq!(old_idx.len(), new_idx.len());
    put_count(&mut payload, new_idx.len());
    for (old, new) in old_idx.iter().zip(&new_idx) {
        let diff = diff_index(old, new);
        put_count(&mut payload, diff.removed.len());
        for (vs, p) in &diff.removed {
            payload.extend_from_slice(&vs.0.to_le_bytes());
            p.encode(&mut payload);
        }
        put_count(&mut payload, diff.upserts.len());
        for e in &diff.upserts {
            put_entry(&mut payload, e);
        }
    }
    envelope(FileKind::Delta, &payload)
}

/// Decode a delta payload and apply it to `base`, returning the restored
/// image and the `base_seq` the delta claims to extend.
fn apply_delta<P: DurablePayload>(
    base: &RunImage<P>,
    payload: &[u8],
) -> Result<(u64, RunImage<P>), DurableError> {
    let mut cur = Cursor::new(payload);
    let base_seq = cur.u64()?;
    let exec = get_exec_image(&mut cur)?;
    let n = cur.count(16)?;
    let mut cursors = Vec::with_capacity(n);
    for _ in 0..n {
        let next_seq = cur.u64()?;
        cursors.push((next_seq, cur.i64()?));
    }
    let egress = get_egress_image(&mut cur)?;
    let mut merge = get_merge_image::<P>(&mut cur)?;
    if !same_structure(&merge, &base.merge) {
        return Err(DurableError::Corrupt("delta structure mismatch"));
    }
    let n_idx = cur.count(8)?;
    {
        let base_idx = indexes(&base.merge);
        if n_idx != base_idx.len() {
            return Err(DurableError::Corrupt("delta index count mismatch"));
        }
        let mut restored = Vec::with_capacity(n_idx);
        for old in base_idx {
            let mut diff = IndexDiff::default();
            let n = cur.count(8)?;
            for _ in 0..n {
                let vs = Time(cur.i64()?);
                diff.removed.push((vs, P::decode(&mut cur)?));
            }
            let n = cur.count(8)?;
            for _ in 0..n {
                diff.upserts.push(get_entry(&mut cur)?);
            }
            restored.push(apply_diff(old, &diff));
        }
        for (slot, idx) in indexes_mut(&mut merge).into_iter().zip(restored) {
            *slot = idx;
        }
    }
    if !cur.is_empty() {
        return Err(DurableError::Corrupt("trailing bytes after delta"));
    }
    Ok((
        base_seq,
        RunImage {
            merge,
            exec,
            cursors,
            egress,
        },
    ))
}

fn file_name(seq: u64, delta: bool) -> String {
    format!("ck-{seq:08}-{}.lmck", if delta { "delta" } else { "snap" })
}

/// Parse `ck-NNNNNNNN-{snap,delta}.lmck`; returns `(seq, is_delta)`.
fn parse_name(name: &str) -> Option<(u64, bool)> {
    let rest = name.strip_prefix("ck-")?;
    let (seq, kind) = rest.split_at(rest.find('-')?);
    let seq: u64 = seq.parse().ok()?;
    match kind {
        "-snap.lmck" => Some((seq, false)),
        "-delta.lmck" => Some((seq, true)),
        _ => None,
    }
}

/// List `(seq, is_delta)` pairs present in `dir`, ascending by seq.
fn scan(dir: &Path) -> Result<Vec<(u64, bool)>, DurableError> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(parsed) = entry.file_name().to_str().and_then(parse_name) {
            found.push(parsed);
        }
    }
    found.sort_unstable();
    Ok(found)
}

/// What [`CheckpointStore::recover`] restored, and how it got there.
pub struct Recovery<P: DurablePayload> {
    /// Checkpoint sequence of the restored image.
    pub seq: u64,
    /// The snapshot the restored chain starts from; `seq - snap_seq`
    /// deltas were replayed on top of it.
    pub snap_seq: u64,
    /// The restored image.
    pub image: RunImage<P>,
    /// Files skipped to reach a restorable image. Non-empty means the
    /// newest chain was torn, corrupt, or gapped, and recovery kept the
    /// longest intact prefix (possibly of an older snapshot chain).
    pub warnings: Vec<String>,
}

/// The on-disk checkpoint chain for one run.
pub struct CheckpointStore<P: DurablePayload> {
    dir: PathBuf,
    next_seq: u64,
    snapshot_every: u64,
    since_snapshot: u64,
    base: Option<RunImage<P>>,
}

impl<P: DurablePayload> CheckpointStore<P> {
    /// Open (or initialise) a checkpoint directory. If checkpoints already
    /// exist, numbering continues after the latest restorable image, which
    /// is loaded as the delta base — a restarted store keeps
    /// delta-chaining, and deltas already on disk count toward the
    /// re-snapshot cadence so repeated restarts cannot grow a chain (and
    /// its recovery replay cost) without bound. Stray `.tmp` files and
    /// tail files recovery could not use (torn, or orphaned behind a torn
    /// snapshot) are removed: the store is about to rewrite those
    /// sequence numbers.
    pub fn create(dir: impl Into<PathBuf>) -> Result<CheckpointStore<P>, DurableError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        remove_temp_files(&dir)?;
        let (next_seq, since_snapshot, base) = match Self::recover(&dir) {
            Ok(r) => {
                for w in &r.warnings {
                    eprintln!("lmerge-durable: {w}");
                }
                for (seq, delta) in scan(&dir)? {
                    if seq > r.seq {
                        std::fs::remove_file(dir.join(file_name(seq, delta)))?;
                    }
                }
                (r.seq + 1, r.seq - r.snap_seq, Some(r.image))
            }
            Err(DurableError::NoCheckpoint) => (0, 0, None),
            Err(e) => return Err(e),
        };
        Ok(CheckpointStore {
            dir,
            next_seq,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            since_snapshot,
            base,
        })
    }

    /// Override how many deltas may chain after a snapshot.
    #[must_use]
    pub fn with_snapshot_every(mut self, every: u64) -> CheckpointStore<P> {
        self.snapshot_every = every.max(1);
        self
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sequence number the next [`save`](CheckpointStore::save) gets.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Persist one image. Returns `(seq, was_delta)`.
    pub fn save(&mut self, image: &RunImage<P>) -> Result<(u64, bool), DurableError> {
        let seq = self.next_seq;
        let as_delta = match &self.base {
            Some(base) if self.since_snapshot < self.snapshot_every => {
                same_structure(&base.merge, &image.merge)
            }
            _ => false,
        };
        let bytes = if as_delta {
            encode_delta(seq - 1, self.base.as_ref().unwrap(), image)
        } else {
            encode_snapshot(image)
        };
        write_atomic(&self.dir.join(file_name(seq, as_delta)), &bytes)?;
        self.next_seq = seq + 1;
        self.since_snapshot = if as_delta { self.since_snapshot + 1 } else { 0 };
        self.base = Some(image.clone());
        Ok((seq, as_delta))
    }

    /// Load the most recent restorable image from `dir`. Any corruption
    /// worked around (see [`recover`](CheckpointStore::recover)) is
    /// reported to stderr; only a directory with *no* restorable image at
    /// all is an error.
    pub fn load_latest(dir: impl AsRef<Path>) -> Result<(u64, RunImage<P>), DurableError> {
        let r = Self::recover(dir.as_ref())?;
        for w in &r.warnings {
            eprintln!("lmerge-durable: {w}");
        }
        Ok((r.seq, r.image))
    }

    /// Restore the newest image the directory's files can still produce.
    ///
    /// Walks snapshot chains newest-first. Within a chain, deltas are
    /// replayed in order until the first torn, corrupt, or missing file —
    /// the intact prefix up to that point is kept (a crash can tear at
    /// most the file being written, so this loses only the newest cut,
    /// not recoverability). If the newest snapshot itself is unreadable,
    /// the previous chain is tried in full. Everything skipped is
    /// recorded in [`Recovery::warnings`]. Errors only when no snapshot
    /// decodes at all: [`DurableError::NoCheckpoint`] for an empty or
    /// missing directory, otherwise the newest chain's decode error.
    pub fn recover(dir: impl AsRef<Path>) -> Result<Recovery<P>, DurableError> {
        let dir = dir.as_ref();
        let found = match scan(dir) {
            Ok(found) => found,
            Err(DurableError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let snaps: Vec<u64> = found
            .iter()
            .filter(|&&(_, delta)| !delta)
            .map(|&(seq, _)| seq)
            .collect();
        if snaps.is_empty() {
            return Err(DurableError::NoCheckpoint);
        }
        let mut warnings = Vec::new();
        let mut newest_err = None;
        for (i, &snap_seq) in snaps.iter().enumerate().rev() {
            let mut image = match Self::read_snapshot(dir, snap_seq) {
                Ok(image) => image,
                Err(e) => {
                    warnings.push(format!(
                        "snapshot {snap_seq} unreadable ({e}); trying the previous chain"
                    ));
                    if newest_err.is_none() {
                        newest_err = Some(e);
                    }
                    continue;
                }
            };
            // This chain's deltas end where the next snapshot (if any)
            // starts a fresh one.
            let chain_end = snaps.get(i + 1).copied().unwrap_or(u64::MAX);
            let mut at = snap_seq;
            for &(seq, delta) in found
                .iter()
                .filter(|&&(s, d)| d && s > snap_seq && s < chain_end)
            {
                debug_assert!(delta);
                if seq != at + 1 {
                    warnings.push(format!(
                        "delta {} missing; restoring through checkpoint {at}",
                        at + 1
                    ));
                    break;
                }
                match Self::read_delta(dir, &image, seq) {
                    Ok(next) => {
                        image = next;
                        at = seq;
                    }
                    Err(e) => {
                        warnings.push(format!(
                            "delta {seq} unreadable ({e}); restoring through checkpoint {at}"
                        ));
                        break;
                    }
                }
            }
            return Ok(Recovery {
                seq: at,
                snap_seq,
                image,
                warnings,
            });
        }
        Err(newest_err.expect("at least one snapshot failed to read"))
    }

    fn read_snapshot(dir: &Path, seq: u64) -> Result<RunImage<P>, DurableError> {
        let bytes = std::fs::read(dir.join(file_name(seq, false)))?;
        let (kind, payload) = open_envelope(&bytes)?;
        if kind != FileKind::Snapshot {
            return Err(DurableError::Corrupt("snapshot file with wrong kind tag"));
        }
        let mut cur = Cursor::new(payload);
        let image = get_run_image(&mut cur)?;
        if !cur.is_empty() {
            return Err(DurableError::Corrupt("trailing bytes after snapshot"));
        }
        Ok(image)
    }

    fn read_delta(dir: &Path, base: &RunImage<P>, seq: u64) -> Result<RunImage<P>, DurableError> {
        let bytes = std::fs::read(dir.join(file_name(seq, true)))?;
        let (kind, payload) = open_envelope(&bytes)?;
        if kind != FileKind::Delta {
            return Err(DurableError::Corrupt("delta file with wrong kind tag"));
        }
        let (base_seq, next) = apply_delta(base, payload)?;
        if base_seq != seq - 1 {
            return Err(DurableError::Corrupt("delta base sequence mismatch"));
        }
        Ok(next)
    }
}

/// A [`CheckpointSink`] that persists through a [`CheckpointStore`]:
/// captures on every finite advance of the output stable point, optionally
/// halting at a chosen sequence number (the recovery tests' reproducible
/// kill switch). I/O errors are recorded, not panicked — the run continues
/// uncheckpointed and the caller inspects [`error`](Self::error).
pub struct DurableCheckpointSink<P: DurablePayload> {
    store: CheckpointStore<P>,
    last_stable: Time,
    halt_at: Option<u64>,
    cursors: Vec<(u64, i64)>,
    cursor_source: Option<CursorSource>,
    egress_source: Option<EgressSource>,
    /// First persistence error, if any.
    pub error: Option<DurableError>,
}

/// Supplier of live transport resume cursors `(consumed frames, acked
/// stable)` per input, polled at every save.
pub type CursorSource = Box<dyn Fn() -> Vec<(u64, i64)> + Send>;

/// Supplier of the live egress/broadcast image (subscriber cursors plus
/// the retained output tail), polled at every save. Because the broadcast
/// publisher runs on the executor thread, the polled image is exactly
/// consistent with the cut being saved.
pub type EgressSource = Box<dyn Fn() -> EgressImage + Send>;

impl<P: DurablePayload> DurableCheckpointSink<P> {
    /// Wrap a store. `last_stable` starts at the store's restored base
    /// image (if any), so a resumed run does not re-checkpoint the cut it
    /// restored from.
    pub fn new(store: CheckpointStore<P>) -> DurableCheckpointSink<P> {
        let last_stable = store
            .base
            .as_ref()
            .map(|b| b.merge.max_stable)
            .unwrap_or(Time::MIN);
        DurableCheckpointSink {
            store,
            last_stable,
            halt_at: None,
            cursors: Vec::new(),
            cursor_source: None,
            egress_source: None,
            error: None,
        }
    }

    /// Halt the run right after checkpoint `seq` is saved.
    #[must_use]
    pub fn halt_after(mut self, seq: u64) -> DurableCheckpointSink<P> {
        self.halt_at = Some(seq);
        self
    }

    /// Attach transport resume cursors to every saved image (networked
    /// runs refresh these from the ingest sessions before each save).
    pub fn set_cursors(&mut self, cursors: Vec<(u64, i64)>) {
        self.cursors = cursors;
    }

    /// Poll `source` for fresh transport cursors at every save — the live
    /// networked path, where the consumed-frame counts advance between
    /// cuts (an ingest server's `cursor_handle()` is the natural source).
    #[must_use]
    pub fn with_cursor_source(mut self, source: CursorSource) -> DurableCheckpointSink<P> {
        self.cursor_source = Some(source);
        self
    }

    /// Poll `source` for the live egress/broadcast image at every save —
    /// a subscription server's `egress_handle()` is the natural source.
    #[must_use]
    pub fn with_egress_source(mut self, source: EgressSource) -> DurableCheckpointSink<P> {
        self.egress_source = Some(source);
        self
    }

    /// The wrapped store.
    pub fn store(&self) -> &CheckpointStore<P> {
        &self.store
    }
}

impl<P: DurablePayload> CheckpointSink<P> for DurableCheckpointSink<P> {
    fn enabled(&self) -> bool {
        true
    }

    fn want(&mut self, stable: Time, _delivered: u64) -> bool {
        if stable > self.last_stable && stable != Time::INFINITY {
            self.last_stable = stable;
            true
        } else {
            false
        }
    }

    fn save(&mut self, mut image: RunImage<P>) -> CheckpointSave {
        if let Some(source) = &self.cursor_source {
            self.cursors = source();
        }
        if image.cursors.is_empty() && !self.cursors.is_empty() {
            image.cursors = self.cursors.clone();
            // A transport cursor counts frames the merge side *popped*
            // from its ingest ring, but the executor offers the cut with
            // each input's next batch already staged — popped, yet absent
            // from the merge image. Persist the delivered prefix instead:
            // drop the staged frame from the count, so a restored server's
            // resume handshake replays it rather than skipping it.
            for (i, cursor) in image.cursors.iter_mut().enumerate() {
                if image.exec.staged.get(i).is_some_and(Option::is_some) {
                    cursor.0 = cursor.0.saturating_sub(1);
                }
            }
        }
        if let Some(source) = &self.egress_source {
            image.egress = source();
        }
        match self.store.save(&image) {
            Ok((seq, delta)) => CheckpointSave {
                seq,
                delta,
                halt: self.halt_at == Some(seq),
            },
            Err(e) => {
                if self.error.is_none() {
                    self.error = Some(e);
                }
                CheckpointSave::default()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_core::VariantKind;
    use lmerge_engine::ExecutorImage;
    use lmerge_temporal::VTime;

    fn entry(k: i32, vs: i64, ve: i64) -> StateEntry<i32> {
        StateEntry {
            vs: Time(vs),
            payload: k,
            per_input: vec![(0, vec![(Time(ve), 1)])],
            output: vec![(Time(ve), 1)],
        }
    }

    fn run_image(entries: Vec<StateEntry<i32>>, stable: i64, delivered: u64) -> RunImage<i32> {
        let mut merge = MergeStateImage::empty(VariantKind::R3);
        merge.max_stable = Time(stable);
        merge.entries = entries;
        RunImage {
            merge,
            exec: ExecutorImage {
                lmerge_ready: VTime(delivered * 10),
                delivered,
                seq: delivered,
                last_feedback: Time::MIN,
                input_stable_hw: vec![Time(stable)],
                output_stable_hw: Time(stable),
                pulls: vec![delivered],
                staged: vec![None],
            },
            cursors: vec![(delivered, stable)],
            egress: EgressImage {
                cursors: vec![(1, delivered)],
                base_seq: delivered,
                next_seq: delivered,
                stable: Time(stable),
                frames: Vec::new(),
            },
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lmerge-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn diff_and_apply_are_inverse() {
        let old = vec![entry(1, 10, 20), entry(2, 11, 21), entry(3, 12, 22)];
        let mut changed = entry(2, 11, 21);
        changed.output = vec![(Time(25), 2)];
        let new = vec![entry(1, 10, 20), changed, entry(4, 13, 23)];
        let diff = diff_index(&old, &new);
        assert_eq!(diff.removed, vec![(Time(12), 3)]);
        assert_eq!(diff.upserts.len(), 2);
        assert_eq!(apply_diff(&old, &diff), new);
    }

    #[test]
    fn snapshot_then_deltas_then_snapshot_restores_exactly() {
        let images = [
            run_image(vec![entry(1, 10, 20)], 5, 1),
            run_image(vec![entry(1, 10, 20), entry(2, 11, 21)], 8, 2),
            run_image(vec![entry(2, 11, 21), entry(3, 12, 22)], 11, 3),
            run_image(vec![entry(3, 12, 22)], 14, 4),
        ];
        // Every prefix of the chain restores exactly.
        for upto in 0..images.len() {
            let dir = tmp_dir(&format!("chain{upto}"));
            let mut store: CheckpointStore<i32> = CheckpointStore::create(&dir)
                .unwrap()
                .with_snapshot_every(2);
            let mut kinds = Vec::new();
            for img in &images[..=upto] {
                let (_, delta) = store.save(img).unwrap();
                kinds.push(delta);
            }
            if upto == images.len() - 1 {
                // Snapshot, two deltas, then the snapshot_every=2 bound
                // forces a fresh snapshot.
                assert_eq!(kinds, vec![false, true, true, false]);
            }
            let (seq, image) = CheckpointStore::<i32>::load_latest(&dir).unwrap();
            assert_eq!(seq as usize, upto);
            assert_eq!(image.merge, images[upto].merge);
            assert_eq!(image.exec, images[upto].exec);
            assert_eq!(image.cursors, images[upto].cursors);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn reopened_store_continues_numbering() {
        let dir = tmp_dir("reopen");
        let mut store: CheckpointStore<i32> = CheckpointStore::create(&dir).unwrap();
        store
            .save(&run_image(vec![entry(1, 10, 20)], 5, 1))
            .unwrap();
        drop(store);
        let mut store: CheckpointStore<i32> = CheckpointStore::create(&dir).unwrap();
        assert_eq!(store.next_seq(), 1);
        let (seq, delta) = store
            .save(&run_image(vec![entry(1, 10, 20), entry(2, 11, 21)], 8, 2))
            .unwrap();
        // The reopened store restored its base, so it can delta.
        assert_eq!((seq, delta), (1, true));
        let (seq, image) = CheckpointStore::<i32>::load_latest(&dir).unwrap();
        assert_eq!(seq, 1);
        assert_eq!(image.merge.entries.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_reports_no_checkpoint() {
        let dir = tmp_dir("empty");
        assert!(matches!(
            CheckpointStore::<i32>::load_latest(&dir),
            Err(DurableError::NoCheckpoint)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            CheckpointStore::<i32>::load_latest(&dir),
            Err(DurableError::NoCheckpoint)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn saved_cursors_discount_staged_frames() {
        let dir = tmp_dir("staged-cursors");
        let store: CheckpointStore<i32> = CheckpointStore::create(&dir).unwrap();
        let mut sink = DurableCheckpointSink::new(store)
            .with_cursor_source(Box::new(|| vec![(5, 100), (7, 200), (9, 300)]));
        let mut image = run_image(vec![entry(1, 10, 20)], 5, 1);
        image.cursors = Vec::new();
        // Inputs 0 and 2 have a frame popped from their ring but still
        // staged in the delivery heap; input 1 was drained.
        image.exec.staged = vec![Some((VTime(50), 4)), None, Some((VTime(60), 6))];
        image.exec.pulls = vec![5, 7, 9];
        let saved = sink.save(image);
        assert!(sink.error.is_none(), "{:?}", sink.error);
        assert_eq!(saved.seq, 0);
        let (_, restored) = CheckpointStore::<i32>::load_latest(&dir).unwrap();
        // The staged frames never reached the merge image, so the
        // persisted cursors must not count them: a restore replays each.
        assert_eq!(restored.cursors, vec![(4, 100), (7, 200), (8, 300)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_newest_delta_restores_the_intact_prefix() {
        let dir = tmp_dir("torn-delta");
        let images = [
            run_image(vec![entry(1, 10, 20)], 5, 1),
            run_image(vec![entry(1, 10, 20), entry(2, 11, 21)], 8, 2),
            run_image(vec![entry(3, 12, 22)], 11, 3),
        ];
        let mut store: CheckpointStore<i32> = CheckpointStore::create(&dir).unwrap();
        for img in &images {
            store.save(img).unwrap();
        }
        // Tear the newest delta, as an unsynced power loss would.
        let path = dir.join(file_name(2, true));
        let whole = std::fs::read(&path).unwrap();
        std::fs::write(&path, &whole[..whole.len() / 2]).unwrap();
        let r = CheckpointStore::<i32>::recover(&dir).unwrap();
        assert_eq!((r.seq, r.snap_seq), (1, 0));
        assert_eq!(r.image.merge, images[1].merge);
        assert_eq!(r.warnings.len(), 1, "the torn file is surfaced");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_newest_snapshot_falls_back_to_the_prior_chain() {
        let dir = tmp_dir("torn-snap");
        let images = [
            run_image(vec![entry(1, 10, 20)], 5, 1),
            run_image(vec![entry(1, 10, 20), entry(2, 11, 21)], 8, 2),
            run_image(vec![entry(3, 12, 22)], 11, 3),
        ];
        let mut store: CheckpointStore<i32> = CheckpointStore::create(&dir)
            .unwrap()
            .with_snapshot_every(1);
        let mut kinds = Vec::new();
        for img in &images {
            kinds.push(store.save(img).unwrap().1);
        }
        assert_eq!(kinds, vec![false, true, false], "snap, delta, snap");
        // Corrupt the newest snapshot: recovery must fall back to the
        // previous chain (snapshot 0 + delta 1) instead of failing.
        let path = dir.join(file_name(2, false));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let r = CheckpointStore::<i32>::recover(&dir).unwrap();
        assert_eq!((r.seq, r.snap_seq), (1, 0));
        assert_eq!(r.image.merge, images[1].merge);
        assert!(!r.warnings.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopened_store_counts_existing_deltas_toward_the_cadence() {
        let dir = tmp_dir("reopen-cadence");
        let img = |n: u64| run_image(vec![entry(n as i32, 10, 20)], n as i64 * 3, n);
        let mut store: CheckpointStore<i32> = CheckpointStore::create(&dir)
            .unwrap()
            .with_snapshot_every(2);
        assert!(!store.save(&img(1)).unwrap().1, "snapshot 0");
        assert!(store.save(&img(2)).unwrap().1, "delta 1");
        drop(store);
        // A restart must not reset the cadence: one more delta fits, then
        // the on-disk chain length forces a snapshot.
        let mut store: CheckpointStore<i32> = CheckpointStore::create(&dir)
            .unwrap()
            .with_snapshot_every(2);
        assert_eq!(store.save(&img(3)).unwrap(), (2, true), "delta 2");
        assert_eq!(store.save(&img(4)).unwrap(), (3, false), "forced snapshot");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_prunes_stray_tmp_and_unreachable_tail_files() {
        let dir = tmp_dir("prune");
        let mut store: CheckpointStore<i32> = CheckpointStore::create(&dir).unwrap();
        store
            .save(&run_image(vec![entry(1, 10, 20)], 5, 1))
            .unwrap();
        // A crash mid-write leaves a temp file; a torn tail delta is
        // unreachable once recovery stops before it.
        std::fs::write(dir.join("ck-00000009-snap.lmck.tmp"), b"partial").unwrap();
        std::fs::write(dir.join(file_name(1, true)), b"garbage").unwrap();
        let store: CheckpointStore<i32> = CheckpointStore::create(&dir).unwrap();
        assert_eq!(
            store.next_seq(),
            1,
            "numbering continues after the recovered cut"
        );
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert_eq!(names, vec!["ck-00000000-snap.lmck".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_checkpoint_is_a_typed_error() {
        let dir = tmp_dir("corrupt");
        let mut store: CheckpointStore<i32> = CheckpointStore::create(&dir).unwrap();
        store
            .save(&run_image(vec![entry(1, 10, 20)], 5, 1))
            .unwrap();
        let path = dir.join(file_name(0, false));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            CheckpointStore::<i32>::load_latest(&dir),
            Err(DurableError::Checksum { .. })
        ));
        // Truncation too.
        let whole = std::fs::read(&path).unwrap();
        std::fs::write(&path, &whole[..whole.len() - 3]).unwrap();
        assert!(CheckpointStore::<i32>::load_latest(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
