//! Log-structured spill: sorted runs on disk, k-way merged on read.
//!
//! When a robustness policy's `max_live_entries` bound trips, R3/R4 hand
//! the flooding input's half-frozen entries to a
//! [`lmerge_core::SpillHandler`] before demoting it. [`FileSpillHandler`]
//! persists each hand-off as one sorted run file (`run-NNNNNN.lmsp`) — an
//! append-only log of runs, never rewritten in place, in the LSM spirit.
//! [`SpillStore::read_merged`] streams the runs back in global `(Vs,
//! payload)` order through a [`std::collections::BinaryHeap`] of per-run
//! cursors, decoding entries incrementally so only one entry per run is
//! resident at a time.

use crate::codec::{envelope, open_envelope, put_count, Cursor, DurableError, FileKind};
use crate::fsutil::{remove_temp_files, write_atomic};
use crate::image::{get_entry, put_entry};
use crate::payload::DurablePayload;
use lmerge_core::{SpillHandler, StateEntry};
use lmerge_engine::SpillNotices;
use lmerge_temporal::StreamId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::path::{Path, PathBuf};

fn run_name(n: u64) -> String {
    format!("run-{n:06}.lmsp")
}

fn parse_run_name(name: &str) -> Option<u64> {
    name.strip_prefix("run-")?
        .strip_suffix(".lmsp")?
        .parse()
        .ok()
}

/// An append-only directory of sorted spill runs.
pub struct SpillStore {
    dir: PathBuf,
    next_run: u64,
}

impl SpillStore {
    /// Open (or initialise) a spill directory, continuing run numbering
    /// after any runs already present. Stray `.tmp` files from a crash
    /// mid-write are removed.
    pub fn create(dir: impl Into<PathBuf>) -> Result<SpillStore, DurableError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        remove_temp_files(&dir)?;
        let mut next_run = 0;
        for entry in std::fs::read_dir(&dir)? {
            if let Some(n) = entry?.file_name().to_str().and_then(parse_run_name) {
                next_run = next_run.max(n + 1);
            }
        }
        Ok(SpillStore { dir, next_run })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Runs written (or found) so far.
    pub fn runs(&self) -> u64 {
        self.next_run
    }

    /// Append one sorted run spilled from `input`. Returns the run number.
    pub fn write_run<P: DurablePayload>(
        &mut self,
        input: StreamId,
        entries: &[StateEntry<P>],
    ) -> Result<u64, DurableError> {
        debug_assert!(
            entries
                .windows(2)
                .all(|w| (w[0].vs, &w[0].payload) <= (w[1].vs, &w[1].payload)),
            "spill runs must arrive sorted by (Vs, payload)"
        );
        let mut payload = Vec::new();
        payload.extend_from_slice(&input.0.to_le_bytes());
        put_count(&mut payload, entries.len());
        for e in entries {
            put_entry(&mut payload, e);
        }
        let n = self.next_run;
        write_atomic(
            &self.dir.join(run_name(n)),
            &envelope(FileKind::SpillRun, &payload),
        )?;
        self.next_run = n + 1;
        Ok(n)
    }

    /// Open every run in the directory and return a merged reader that
    /// yields all spilled entries in global `(Vs, payload)` order (ties
    /// broken by run number, i.e. spill order).
    pub fn read_merged<P: DurablePayload>(&self) -> Result<MergedSpill<P>, DurableError> {
        let mut numbers: Vec<u64> = std::fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok()?.file_name().to_str().and_then(parse_run_name))
            .collect();
        numbers.sort_unstable();
        let mut heap = BinaryHeap::new();
        for (idx, n) in numbers.into_iter().enumerate() {
            let bytes = std::fs::read(self.dir.join(run_name(n)))?;
            let (kind, payload) = open_envelope(&bytes)?;
            if kind != FileKind::SpillRun {
                return Err(DurableError::Corrupt("spill run with wrong kind tag"));
            }
            let mut cursor = RunCursor::new(payload.to_vec())?;
            if let Some(entry) = cursor.next_entry()? {
                heap.push(Reverse(HeapItem {
                    entry,
                    run: idx as u64,
                    cursor,
                }));
            }
        }
        Ok(MergedSpill { heap })
    }
}

/// Incremental decoder over one run's payload bytes: the header is read
/// up front, entries one at a time.
struct RunCursor {
    data: Vec<u8>,
    pos: usize,
    left: usize,
    input: StreamId,
}

impl RunCursor {
    fn new(data: Vec<u8>) -> Result<RunCursor, DurableError> {
        let mut cur = Cursor::new(&data);
        let input = StreamId(cur.u32()?);
        let left = cur.count(8)?;
        let pos = data.len() - cur.remaining();
        Ok(RunCursor {
            data,
            pos,
            left,
            input,
        })
    }

    fn next_entry<P: DurablePayload>(&mut self) -> Result<Option<StateEntry<P>>, DurableError> {
        if self.left == 0 {
            if self.pos != self.data.len() {
                return Err(DurableError::Corrupt("trailing bytes after spill run"));
            }
            return Ok(None);
        }
        let mut cur = Cursor::new(&self.data[self.pos..]);
        let entry = get_entry(&mut cur)?;
        self.pos = self.data.len() - cur.remaining();
        self.left -= 1;
        Ok(Some(entry))
    }
}

struct HeapItem<P> {
    entry: StateEntry<P>,
    run: u64,
    cursor: RunCursor,
}

impl<P: Ord> PartialEq for HeapItem<P> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl<P: Ord> Eq for HeapItem<P> {}
impl<P: Ord> PartialOrd for HeapItem<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P: Ord> Ord for HeapItem<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.entry.vs, &self.entry.payload, self.run).cmp(&(
            other.entry.vs,
            &other.entry.payload,
            other.run,
        ))
    }
}

/// A k-way merged stream over every run in a [`SpillStore`].
///
/// Yields `(source input, entry)` pairs in global `(Vs, payload)` order.
/// Errors surface through the `Result` items, after which iteration ends.
pub struct MergedSpill<P> {
    heap: BinaryHeap<Reverse<HeapItem<P>>>,
}

impl<P: DurablePayload> Iterator for MergedSpill<P> {
    type Item = Result<(StreamId, StateEntry<P>), DurableError>;

    fn next(&mut self) -> Option<Self::Item> {
        let Reverse(mut item) = self.heap.pop()?;
        let input = item.cursor.input;
        match item.cursor.next_entry() {
            Ok(Some(next)) => {
                let out = std::mem::replace(&mut item.entry, next);
                self.heap.push(Reverse(item));
                Some(Ok((input, out)))
            }
            Ok(None) => Some(Ok((input, item.entry))),
            Err(e) => {
                self.heap.clear();
                Some(Err(e))
            }
        }
    }
}

/// A [`SpillHandler`] that persists demoted state through a [`SpillStore`]
/// and (optionally) posts a notice for the executor to stamp into the
/// trace. Write failures decline the spill (the merge then demotes by
/// dropping, exactly as without a handler) and are recorded in
/// [`error`](Self::error).
pub struct FileSpillHandler<P: DurablePayload> {
    store: SpillStore,
    notices: Option<SpillNotices>,
    /// First write error, if any.
    pub error: Option<DurableError>,
    _marker: std::marker::PhantomData<fn(P)>,
}

impl<P: DurablePayload> FileSpillHandler<P> {
    /// Wrap a store.
    pub fn new(store: SpillStore) -> FileSpillHandler<P> {
        FileSpillHandler {
            store,
            notices: None,
            error: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Post spill notices into `notices` (the executor drains and traces
    /// them as `StateSpilled` events).
    #[must_use]
    pub fn with_notices(mut self, notices: SpillNotices) -> FileSpillHandler<P> {
        self.notices = Some(notices);
        self
    }
}

impl<P: DurablePayload> SpillHandler<P> for FileSpillHandler<P> {
    fn spill(&mut self, input: StreamId, run: &[StateEntry<P>]) -> bool {
        match self.store.write_run(input, run) {
            Ok(_) => {
                if let Some(n) = &self.notices {
                    n.notify(input.0, run.len() as u64);
                }
                true
            }
            Err(e) => {
                if self.error.is_none() {
                    self.error = Some(e);
                }
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_temporal::Time;

    fn entry(k: i32, vs: i64) -> StateEntry<i32> {
        StateEntry {
            vs: Time(vs),
            payload: k,
            per_input: vec![(0, vec![(Time(vs + 3), 1)])],
            output: vec![],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lmerge-spill-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn k_way_merge_restores_global_order() {
        let dir = tmp_dir("merge");
        let mut store = SpillStore::create(&dir).unwrap();
        store
            .write_run(StreamId(0), &[entry(1, 10), entry(2, 40), entry(1, 70)])
            .unwrap();
        store
            .write_run(StreamId(1), &[entry(5, 20), entry(6, 50)])
            .unwrap();
        store.write_run(StreamId(2), &[entry(9, 30)]).unwrap();
        store.write_run::<i32>(StreamId(0), &[]).unwrap(); // empty runs are fine
        let merged: Vec<(StreamId, StateEntry<i32>)> = store
            .read_merged::<i32>()
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        let keys: Vec<(i64, i32, u32)> = merged
            .iter()
            .map(|(s, e)| (e.vs.0, e.payload, s.0))
            .collect();
        assert_eq!(
            keys,
            vec![
                (10, 1, 0),
                (20, 5, 1),
                (30, 9, 2),
                (40, 2, 0),
                (50, 6, 1),
                (70, 1, 0),
            ]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_ties_break_by_run_order() {
        let dir = tmp_dir("ties");
        let mut store = SpillStore::create(&dir).unwrap();
        store.write_run(StreamId(3), &[entry(7, 10)]).unwrap();
        store.write_run(StreamId(8), &[entry(7, 10)]).unwrap();
        let merged: Vec<(StreamId, StateEntry<i32>)> = store
            .read_merged::<i32>()
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(merged[0].0, StreamId(3));
        assert_eq!(merged[1].0, StreamId(8));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_handler_claims_spills_and_posts_notices() {
        let dir = tmp_dir("handler");
        let notices = SpillNotices::new();
        let mut handler: FileSpillHandler<i32> =
            FileSpillHandler::new(SpillStore::create(&dir).unwrap()).with_notices(notices.clone());
        assert!(handler.spill(StreamId(2), &[entry(1, 10), entry(2, 20)]));
        assert!(handler.spill(StreamId(0), &[entry(3, 5)]));
        assert_eq!(notices.drain(), vec![(2, 2), (0, 1)]);
        let store = SpillStore::create(&dir).unwrap();
        assert_eq!(store.runs(), 2);
        let merged: Vec<(StreamId, StateEntry<i32>)> = store
            .read_merged::<i32>()
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].0, StreamId(0)); // vs=5 from input 0 first
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_run_yields_typed_error() {
        let dir = tmp_dir("corrupt");
        let mut store = SpillStore::create(&dir).unwrap();
        store.write_run(StreamId(0), &[entry(1, 10)]).unwrap();
        let path = dir.join(run_name(0));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() - 12;
        bytes[mid] ^= 0x80;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.read_merged::<i32>().is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
