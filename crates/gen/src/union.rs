//! Stable-correct union of several physical streams.
//!
//! "When we gather data from multiple sources … into a single stream using
//! a Union operator, the result can be disordered even if each input stream
//! arrives in order" (Section I). Data elements interleave; punctuation is
//! the *minimum* of the inputs' stable points — a union may only promise
//! what every branch has promised.

use lmerge_temporal::{Element, Payload, Time};

/// Union `inputs` by round-robin interleaving, with correct punctuation.
pub fn union<P: Payload>(inputs: &[Vec<Element<P>>]) -> Vec<Element<P>> {
    let n = inputs.len();
    let mut cursors = vec![0usize; n];
    let mut last_stable = vec![Time::MIN; n];
    let mut emitted_stable = Time::MIN;
    let mut out = Vec::with_capacity(inputs.iter().map(Vec::len).sum());

    loop {
        let mut progressed = false;
        for i in 0..n {
            if cursors[i] >= inputs[i].len() {
                continue;
            }
            progressed = true;
            let e = &inputs[i][cursors[i]];
            cursors[i] += 1;
            match e {
                Element::Stable(t) => {
                    last_stable[i] = last_stable[i].max(*t);
                    let floor = *last_stable.iter().min().expect("n > 0");
                    if floor > emitted_stable {
                        emitted_stable = floor;
                        out.push(Element::Stable(floor));
                    }
                }
                data => out.push(data.clone()),
            }
        }
        if !progressed {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_temporal::reconstitute::tdb_of;

    type E = Element<&'static str>;

    #[test]
    fn union_interleaves_and_keeps_all_events() {
        let a = vec![E::insert("a1", 1, 5), E::insert("a2", 3, 7)];
        let b = vec![E::insert("b1", 2, 6)];
        let u = union(&[a, b]);
        let tdb = tdb_of(&u).unwrap();
        assert_eq!(tdb.len(), 3);
    }

    #[test]
    fn union_of_ordered_inputs_can_be_disordered() {
        // Both inputs are ordered, but round-robin interleaving is not.
        let a = vec![E::insert("a1", 10, 15), E::insert("a2", 20, 25)];
        let b = vec![E::insert("b1", 1, 5), E::insert("b2", 2, 6)];
        let u = union(&[a, b]);
        let vss: Vec<i64> = u
            .iter()
            .filter_map(|e| e.key().map(|(vs, _)| vs.0))
            .collect();
        assert!(
            vss.windows(2).any(|w| w[0] > w[1]),
            "disorder expected: {vss:?}"
        );
    }

    #[test]
    fn stable_is_min_across_inputs() {
        let a = vec![E::insert("a", 1, 5), E::stable(100)];
        let b = vec![E::insert("b", 2, 6), E::stable(10)];
        let u = union(&[a, b]);
        let stables: Vec<Time> = u
            .iter()
            .filter_map(|e| match e {
                Element::Stable(t) => Some(*t),
                _ => None,
            })
            .collect();
        assert_eq!(stables, vec![Time(10)], "only the joint promise holds");
    }

    #[test]
    fn union_output_is_well_formed() {
        let a = vec![
            E::insert("a", 50, 60),
            E::stable(40),
            E::insert("c", 45, 70),
        ];
        let b = vec![E::insert("b", 2, 90), E::stable(1)];
        let u = union(&[a, b]);
        assert!(tdb_of(&u).is_ok(), "punctuation must not outrun branches");
    }

    #[test]
    fn complete_inputs_yield_complete_union() {
        let a = vec![E::insert("a", 1, 5), E::stable(Time::INFINITY)];
        let b = vec![E::insert("b", 2, 6), E::stable(Time::INFINITY)];
        let u = union(&[a, b]);
        assert_eq!(u.last(), Some(&E::stable(Time::INFINITY)));
    }
}
