//! A synthetic stock-ticker workload with revision tuples.
//!
//! Stands in for the paper's real Yahoo! Finance data (footnote 2 — used
//! only as a sanity check; the synthetic generator "gave us finer control
//! over stream properties of interest"). Each quote for a symbol is an
//! event whose lifetime runs until the next quote for the same symbol;
//! quotes are issued open-ended and *adjusted* when superseded — and, as in
//! commercial feeds, a small fraction of quotes are later amended
//! (cancel-and-replace revisions).

use bytes::{BufMut, Bytes, BytesMut};
use lmerge_temporal::{Element, Time, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ticker workload parameters.
#[derive(Clone, Debug)]
pub struct TickerConfig {
    /// Number of quotes to generate.
    pub num_quotes: usize,
    /// Number of distinct symbols.
    pub symbols: u32,
    /// Probability a quote is later amended (price correction).
    pub amend_prob: f64,
    /// Milliseconds between consecutive quotes.
    pub quote_gap_ms: i64,
    /// Emit a `stable` every this many quotes.
    pub stable_every: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TickerConfig {
    fn default() -> Self {
        TickerConfig {
            num_quotes: 10_000,
            symbols: 40,
            amend_prob: 0.02,
            quote_gap_ms: 100,
            stable_every: 200,
            seed: 2012,
        }
    }
}

fn quote_payload(symbol: u32, price_cents: u64, seq: u64) -> Value {
    let mut body = BytesMut::with_capacity(16);
    body.put_u64_le(price_cents);
    body.put_u64_le(seq);
    Value {
        key: symbol as i32,
        body: Bytes::from(body),
    }
}

/// Generate the ticker stream, ending with `stable(∞)`.
pub fn generate_ticker(cfg: &TickerConfig) -> Vec<Element<Value>> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.num_quotes * 2);
    // Per symbol: (payload, vs, current ve) of the open quote.
    let mut open: Vec<Option<(Value, Time, Time)>> = vec![None; cfg.symbols as usize];
    let mut prices: Vec<u64> = (0..cfg.symbols)
        .map(|_| rng.random_range(1000..50_000))
        .collect();
    let mut t: i64 = 0;
    // The stable point must trail every open (adjustable) quote.
    let mut last_stable = Time::MIN;

    for seq in 0..cfg.num_quotes {
        t += cfg.quote_gap_ms;
        let sym = rng.random_range(0..cfg.symbols) as usize;
        // Close the superseded quote.
        if let Some((p, vs, ve)) = open[sym].take() {
            out.push(Element::adjust(p, vs, ve, Time(t)));
        }
        // Random walk the price; occasionally amend the *new* quote later.
        let delta = rng.random_range(0..200) as i64 - 100;
        prices[sym] = (prices[sym] as i64 + delta).max(100) as u64;
        let p = quote_payload(sym as u32, prices[sym], seq as u64);
        out.push(Element::insert(p.clone(), t, Time::INFINITY));
        open[sym] = Some((p.clone(), Time(t), Time::INFINITY));

        if rng.random_bool(cfg.amend_prob.clamp(0.0, 1.0)) {
            // Amend: cancel the quote and replace it with a corrected one.
            out.push(Element::adjust(p, Time(t), Time::INFINITY, Time(t)));
            prices[sym] += 1;
            let fixed = quote_payload(sym as u32, prices[sym], seq as u64);
            out.push(Element::insert(fixed.clone(), t, Time::INFINITY));
            open[sym] = Some((fixed, Time(t), Time::INFINITY));
        }

        if (seq + 1) % cfg.stable_every == 0 {
            // Everything before the oldest open quote is settled.
            let oldest_open = open
                .iter()
                .flatten()
                .map(|(_, vs, _)| *vs)
                .min()
                .unwrap_or(Time(t));
            if oldest_open > last_stable {
                out.push(Element::Stable(oldest_open));
                last_stable = oldest_open;
            }
        }
    }
    // Close all open quotes at the end of the trading window.
    let close = Time(t + cfg.quote_gap_ms);
    for slot in open.iter_mut() {
        if let Some((p, vs, ve)) = slot.take() {
            out.push(Element::adjust(p, vs, ve, close));
        }
    }
    out.push(Element::Stable(Time::INFINITY));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_temporal::reconstitute::tdb_of;

    #[test]
    fn ticker_stream_is_well_formed() {
        let elems = generate_ticker(&TickerConfig {
            num_quotes: 2000,
            ..Default::default()
        });
        let tdb = tdb_of(&elems).expect("valid stream");
        // Every event ends up with a finite lifetime (all quotes closed).
        for ((_, _), ve, _) in tdb.iter() {
            assert!(!ve.is_infinite());
        }
    }

    #[test]
    fn contains_revisions() {
        let elems = generate_ticker(&TickerConfig {
            num_quotes: 1000,
            ..Default::default()
        });
        assert!(elems.iter().any(|e| e.is_adjust()));
    }

    #[test]
    fn quote_count_matches_tdb() {
        let cfg = TickerConfig {
            num_quotes: 500,
            amend_prob: 0.0,
            ..Default::default()
        };
        let tdb = tdb_of(&generate_ticker(&cfg)).unwrap();
        assert_eq!(tdb.len(), 500, "one event per quote when nothing amends");
    }

    #[test]
    fn deterministic() {
        let cfg = TickerConfig::default();
        assert_eq!(generate_ticker(&cfg), generate_ticker(&cfg));
    }
}
