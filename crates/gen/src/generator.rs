//! The reference stream generator (paper Section VI-B).
//!
//! Produces an insert-only physical stream with controlled disorder and
//! punctuation — the role played in the paper by the commercial test stream
//! generator of \[26\]. Downstream sub-queries (the engine's `IntervalCount`)
//! turn disorder into `adjust` elements, and the [`crate::divergence`]
//! transformer turns one reference stream into many physically different,
//! mutually consistent copies.

use crate::config::GenConfig;
use bytes::{BufMut, Bytes, BytesMut};
use lmerge_temporal::{Element, Tdb, Time, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated reference stream plus its logical content.
#[derive(Clone, Debug)]
pub struct RefStream {
    /// The physical element sequence (inserts + stables).
    pub elements: Vec<Element<Value>>,
    /// The logical TDB the stream reconstitutes to.
    pub tdb: Tdb<Value>,
}

/// Build a payload whose body starts with a unique sequence number, padded
/// to the configured length — the paper's "randomly generated 1000-byte
/// string", which is unique with overwhelming probability; making
/// uniqueness explicit keeps `(Vs, Payload)` an honest key for R3.
fn payload(seq: u64, key: i32, len: usize) -> Value {
    let len = len.max(8);
    let mut body = BytesMut::with_capacity(len);
    body.put_u64_le(seq);
    body.resize(len, (key % 251) as u8);
    Value {
        key,
        body: Bytes::from(body),
    }
}

/// Generate a reference stream per the configuration.
///
/// ```
/// use lmerge_gen::{generate, GenConfig};
///
/// let stream = generate(&GenConfig::small(100, 7));
/// assert_eq!(stream.tdb.len(), 100);
/// // The physical stream reconstitutes to exactly that TDB.
/// let tdb = lmerge_temporal::reconstitute::tdb_of(&stream.elements).unwrap();
/// assert_eq!(tdb, stream.tdb);
/// ```
pub fn generate(cfg: &GenConfig) -> RefStream {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut elements = Vec::with_capacity(cfg.num_events + cfg.num_events / 50 + 1);
    let mut tdb = Tdb::new();

    let mut now: i64 = cfg.disorder_window_ms; // head-room for back-shifts
    let mut last_stable = Time::MIN;
    let mut inserts_since_stable = 0usize;

    for seq in 0..cfg.num_events {
        now += rng.random_range(cfg.min_gap_ms..=cfg.max_gap_ms.max(cfg.min_gap_ms));
        // Disorder: move Vs back by up to the disorder window, but never
        // behind the punctuation already emitted.
        let vs = if cfg.disorder > 0.0 && rng.random_bool(cfg.disorder.min(1.0)) {
            let back = rng.random_range(1..=cfg.disorder_window_ms.max(1));
            let floor = match last_stable {
                Time::MIN => 0,
                t => t.0,
            };
            Time((now - back).max(floor))
        } else {
            Time(now)
        };
        let ve = vs.saturating_add(cfg.event_duration_ms.max(1));
        let p = payload(
            seq as u64,
            rng.random_range(0..=cfg.key_range),
            cfg.payload_len,
        );
        tdb.insert(lmerge_temporal::Event::new(p.clone(), vs, ve));
        elements.push(Element::insert(p.clone(), vs, ve));
        inserts_since_stable += 1;
        // Exact duplicates exercise the R4 multiset semantics.
        if cfg.duplicate_prob > 0.0 && rng.random_bool(cfg.duplicate_prob.min(1.0)) {
            tdb.insert(lmerge_temporal::Event::new(p.clone(), vs, ve));
            elements.push(Element::insert(p, vs, ve));
        }

        // Punctuation: an element is stable() with probability StableFreq,
        // "at least one insert … between consecutive stable() elements".
        if inserts_since_stable >= 1
            && cfg.stable_freq > 0.0
            && rng.random_bool(cfg.stable_freq.min(1.0))
        {
            // Future Vs values are ≥ now − window, so this is safe.
            let s = Time(now - cfg.disorder_window_ms);
            if s > last_stable {
                elements.push(Element::Stable(s));
                last_stable = s;
                inserts_since_stable = 0;
            }
        }
    }

    if cfg.finalize {
        elements.push(Element::Stable(Time::INFINITY));
    }
    RefStream { elements, tdb }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_temporal::reconstitute::tdb_of;

    #[test]
    fn stream_is_well_formed_and_matches_tdb() {
        let r = generate(&GenConfig::small(500, 1));
        let tdb = tdb_of(&r.elements).expect("well-formed stream");
        assert_eq!(tdb, r.tdb);
        assert_eq!(tdb.len(), 500);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&GenConfig::small(100, 9));
        let b = generate(&GenConfig::small(100, 9));
        assert_eq!(a.elements, b.elements);
        let c = generate(&GenConfig::small(100, 10));
        assert_ne!(a.elements, c.elements);
    }

    #[test]
    fn disorder_fraction_is_respected() {
        let ordered = generate(&GenConfig::small(2000, 3).with_disorder(0.0));
        let disordered = generate(&GenConfig::small(2000, 3).with_disorder(0.5));
        let count_inversions = |elems: &[Element<Value>]| {
            let mut last = Time::MIN;
            let mut inv = 0;
            for e in elems {
                if let Element::Insert(ev) = e {
                    if ev.vs < last {
                        inv += 1;
                    }
                    last = last.max(ev.vs);
                }
            }
            inv
        };
        assert_eq!(count_inversions(&ordered.elements), 0);
        let inv = count_inversions(&disordered.elements);
        assert!(
            (600..=1300).contains(&inv),
            "~50% of 2000 events disordered (some back-shifts are no-ops), got {inv}"
        );
    }

    #[test]
    fn stable_frequency_is_respected() {
        let r = generate(&GenConfig::small(5000, 4).with_stable_freq(0.01));
        let stables = r.elements.iter().filter(|e| e.is_stable()).count();
        assert!(
            (20..=90).contains(&stables),
            "~1% of 5000 plus the final stable, got {stables}"
        );
    }

    #[test]
    fn zero_stable_freq_yields_only_final_punctuation() {
        let r = generate(&GenConfig::small(100, 5).with_stable_freq(0.0));
        assert_eq!(r.elements.iter().filter(|e| e.is_stable()).count(), 1);
        assert!(r.elements.last().unwrap().is_stable());
    }

    #[test]
    fn payloads_are_unique() {
        let r = generate(&GenConfig::small(1000, 6));
        let mut seen = std::collections::HashSet::new();
        for e in &r.elements {
            if let Element::Insert(ev) = e {
                assert!(seen.insert(ev.payload.clone()), "duplicate payload");
            }
        }
    }

    #[test]
    fn keys_are_in_configured_range() {
        let r = generate(&GenConfig::small(500, 7));
        for e in &r.elements {
            if let Element::Insert(ev) = e {
                assert!((0..=400).contains(&ev.payload.key));
            }
        }
    }

    #[test]
    fn payload_len_is_honoured() {
        let cfg = GenConfig::small(10, 8).with_payload_len(1000);
        let r = generate(&cfg);
        for e in &r.elements {
            if let Element::Insert(ev) = e {
                assert_eq!(ev.payload.body.len(), 1000);
            }
        }
    }
}

#[cfg(test)]
mod duplicate_tests {
    use super::*;
    use crate::config::GenConfig;

    #[test]
    fn duplicates_appear_in_tdb_as_multiset() {
        let mut cfg = GenConfig::small(500, 33);
        cfg.duplicate_prob = 0.2;
        let r = generate(&cfg);
        let dupes = r.tdb.iter().filter(|(_, _, count)| *count > 1).count();
        assert!(
            (50..=160).contains(&dupes),
            "~20% duplicated events, got {dupes}"
        );
        let inserts = r.elements.iter().filter(|e| e.is_insert()).count();
        assert_eq!(inserts, 500 + dupes);
    }
}
