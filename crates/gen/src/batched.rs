//! The plan-switching workload of Figure 10.
//!
//! "We feed a stream with 200K elements, where alternating sequences
//! (batches) of events have low and high values of X. The batch size is
//! varied randomly between 10K and 30K elements. Thus, the 'optimal' plan
//! switches 9 times during execution." (Section VI-E-3)

use bytes::{BufMut, Bytes, BytesMut};
use lmerge_temporal::{Element, Time, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the alternating-batch workload.
#[derive(Clone, Debug)]
pub struct BatchedConfig {
    /// Total data elements (paper: 200_000).
    pub num_events: usize,
    /// Minimum batch length (paper: 10_000).
    pub min_batch: usize,
    /// Maximum batch length (paper: 30_000).
    pub max_batch: usize,
    /// Keys below this are "low X"; at or above, "high X".
    pub threshold: i32,
    /// Largest key value (the generator's `[0, 400]` interval).
    pub key_range: i32,
    /// Event lifetime (kept short so feedback can skip whole batches).
    pub event_duration_ms: i64,
    /// Emit a `stable` every this many events.
    pub stable_every: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BatchedConfig {
    fn default() -> Self {
        BatchedConfig {
            num_events: 200_000,
            min_batch: 10_000,
            max_batch: 30_000,
            threshold: 200,
            key_range: 400,
            event_duration_ms: 50,
            stable_every: 500,
            seed: 99,
        }
    }
}

/// Generate the alternating low/high-key stream, ending with `stable(∞)`.
/// Returns the elements and the number of batches produced.
pub fn generate_batched(cfg: &BatchedConfig) -> (Vec<Element<Value>>, usize) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.num_events + cfg.num_events / cfg.stable_every + 1);
    let mut produced = 0usize;
    let mut batches = 0usize;
    let mut low = true;
    let mut t: i64 = 0;

    while produced < cfg.num_events {
        let len = rng
            .random_range(cfg.min_batch..=cfg.max_batch)
            .min(cfg.num_events - produced);
        for _ in 0..len {
            t += 1;
            let key = if low {
                rng.random_range(0..cfg.threshold)
            } else {
                rng.random_range(cfg.threshold..=cfg.key_range)
            };
            let mut body = BytesMut::with_capacity(8);
            body.put_u64_le(produced as u64);
            out.push(Element::insert(
                Value {
                    key,
                    body: Bytes::from(body),
                },
                t,
                t + cfg.event_duration_ms,
            ));
            produced += 1;
            if produced.is_multiple_of(cfg.stable_every) {
                out.push(Element::Stable(Time(t)));
            }
        }
        low = !low;
        batches += 1;
    }
    out.push(Element::Stable(Time::INFINITY));
    (out, batches)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workload_shape() {
        let cfg = BatchedConfig::default();
        let (elems, batches) = generate_batched(&cfg);
        let inserts = elems.iter().filter(|e| e.is_insert()).count();
        assert_eq!(inserts, 200_000);
        // 200K in batches of 10–30K: between 7 and 20 batches.
        assert!((7..=20).contains(&batches), "got {batches} batches");
        assert_eq!(elems.last(), Some(&Element::Stable(Time::INFINITY)));
    }

    #[test]
    fn batches_alternate_key_ranges() {
        let cfg = BatchedConfig {
            num_events: 300,
            min_batch: 100,
            max_batch: 100,
            stable_every: 1000,
            ..Default::default()
        };
        let (elems, batches) = generate_batched(&cfg);
        assert_eq!(batches, 3);
        let keys: Vec<i32> = elems
            .iter()
            .filter_map(|e| match e {
                Element::Insert(ev) => Some(ev.payload.key),
                _ => None,
            })
            .collect();
        assert!(keys[..100].iter().all(|k| *k < 200), "first batch low");
        assert!(keys[100..200].iter().all(|k| *k >= 200), "second high");
        assert!(keys[200..].iter().all(|k| *k < 200), "third low");
    }

    #[test]
    fn punctuation_cadence() {
        let cfg = BatchedConfig {
            num_events: 1000,
            min_batch: 500,
            max_batch: 500,
            stable_every: 100,
            ..Default::default()
        };
        let (elems, _) = generate_batched(&cfg);
        let stables = elems.iter().filter(|e| e.is_stable()).count();
        assert_eq!(stables, 10 + 1, "one per 100 events plus the final ∞");
    }

    #[test]
    fn timestamps_strictly_increase() {
        let (elems, _) = generate_batched(&BatchedConfig {
            num_events: 500,
            min_batch: 100,
            max_batch: 200,
            ..Default::default()
        });
        let mut last = Time::MIN;
        for e in &elems {
            if let Element::Insert(ev) = e {
                assert!(ev.vs > last);
                last = ev.vs;
            }
        }
    }
}
