//! Physical divergence: many mutually consistent copies of one stream.
//!
//! "In many applications, the 'same' logical stream may present itself
//! physically in multiple physical forms" (Section I). Given a reference
//! stream, this module derives copies that differ in
//!
//! * **order** — data elements are shuffled within punctuation windows
//!   (moving an insert across a `stable` that freezes it would be illegal,
//!   so shuffling stays inside each window);
//! * **composition** — some inserts are replaced by a *provisional* insert
//!   (a longer or infinite end time) plus a later `adjust` to the true end:
//!   the revision-path divergence of Table I;
//! * **punctuation** — each copy keeps only a random subset of the
//!   reference's `stable` elements (progress is reported at different
//!   instants on different copies);
//! * optionally **content** — with `drop_prob > 0`, a copy omits some
//!   inserts entirely (the missing-elements regime of Section V-C; off by
//!   default because dropped elements make copies only *segment*-consistent).

use lmerge_temporal::{Element, Time, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Knobs for the divergence transformer.
#[derive(Clone, Copy, Debug)]
pub struct DivergenceConfig {
    /// Probability that an insert takes a provisional-then-adjust path.
    pub revision_prob: f64,
    /// Probability that a provisional end is `∞` (otherwise it is the true
    /// end plus a random extension).
    pub provisional_inf_prob: f64,
    /// Maximum extension of a finite provisional end (application ms).
    pub provisional_extra_ms: i64,
    /// Probability that each non-final `stable` is kept by this copy.
    pub stable_keep_prob: f64,
    /// Probability that an insert is dropped from this copy entirely.
    pub drop_prob: f64,
    /// Base seed; each copy uses `seed + copy_index`.
    pub seed: u64,
}

impl Default for DivergenceConfig {
    fn default() -> Self {
        DivergenceConfig {
            revision_prob: 0.3,
            provisional_inf_prob: 0.5,
            provisional_extra_ms: 30_000,
            stable_keep_prob: 0.7,
            drop_prob: 0.0,
            seed: 7,
        }
    }
}

/// Derive physically divergent copy number `copy_index` of `reference`.
///
/// The result reconstitutes to the same TDB as the reference (when
/// `drop_prob` is zero) and never violates the punctuation it emits, so a
/// set of copies is mutually consistent by construction.
///
/// ```
/// use lmerge_gen::{diverge, generate, DivergenceConfig, GenConfig};
/// use lmerge_temporal::reconstitute::tdb_of;
///
/// let reference = generate(&GenConfig::small(50, 1));
/// let copy_a = diverge(&reference.elements, &DivergenceConfig::default(), 0);
/// let copy_b = diverge(&reference.elements, &DivergenceConfig::default(), 1);
/// assert_ne!(copy_a, copy_b);                       // physically different
/// assert_eq!(tdb_of(&copy_a).unwrap(), reference.tdb); // logically equal
/// assert_eq!(tdb_of(&copy_b).unwrap(), reference.tdb);
/// ```
pub fn diverge(
    reference: &[Element<Value>],
    cfg: &DivergenceConfig,
    copy_index: u64,
) -> Vec<Element<Value>> {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(copy_index));
    let mut out = Vec::with_capacity(reference.len() + reference.len() / 2);

    // Process one punctuation window at a time.
    let mut window: Vec<Element<Value>> = Vec::new();
    for e in reference {
        match e {
            Element::Stable(t) => {
                flush_window(&mut window, &mut rng, cfg, &mut out);
                let is_final = *t == Time::INFINITY;
                if is_final || rng.random_bool(cfg.stable_keep_prob.clamp(0.0, 1.0)) {
                    out.push(Element::Stable(*t));
                }
            }
            data => window.push(data.clone()),
        }
    }
    flush_window(&mut window, &mut rng, cfg, &mut out);
    out
}

fn flush_window(
    window: &mut Vec<Element<Value>>,
    rng: &mut StdRng,
    cfg: &DivergenceConfig,
    out: &mut Vec<Element<Value>>,
) {
    if window.is_empty() {
        return;
    }
    // Order divergence: shuffle the window, but keep the *relative* order
    // of elements sharing a (Vs, Payload) key — an adjust must still follow
    // its insert, and adjust chains must stay chained (their `Vold` values
    // thread through the sequence).
    let original = std::mem::take(window);
    let mut shuffled = original.clone();
    shuffled.shuffle(rng);
    let mut per_key: std::collections::HashMap<
        (Time, Value),
        std::collections::VecDeque<Element<Value>>,
    > = std::collections::HashMap::new();
    let mut key_counts: std::collections::HashMap<(Time, Value), usize> =
        std::collections::HashMap::new();
    for e in &original {
        if let Some((vs, p)) = e.key() {
            per_key
                .entry((vs, p.clone()))
                .or_default()
                .push_back(e.clone());
            *key_counts.entry((vs, p.clone())).or_insert(0) += 1;
        }
    }
    let ordered: Vec<Element<Value>> = shuffled
        .into_iter()
        .map(|e| match e.key() {
            Some((vs, p)) => per_key
                .get_mut(&(vs, p.clone()))
                .and_then(|q| q.pop_front())
                .expect("every keyed element was queued"),
            None => e,
        })
        .collect();

    // Composition divergence: provisional insert + later adjust. Applied
    // only to inserts whose key carries no other elements in the window —
    // splicing a synthetic adjust into an existing chain would break it.
    let mut staged: Vec<(usize, Element<Value>)> = Vec::new();
    for (i, e) in ordered.into_iter().enumerate() {
        let lone_insert = matches!(&e, Element::Insert(ev)
            if key_counts.get(&(ev.vs, ev.payload.clone())) == Some(&1));
        match e {
            Element::Insert(ev)
                if cfg.drop_prob > 0.0 && rng.random_bool(cfg.drop_prob.min(1.0)) =>
            {
                // Dropped from this copy: another input covers it.
                drop(ev);
            }
            Element::Insert(ev)
                if lone_insert && rng.random_bool(cfg.revision_prob.clamp(0.0, 1.0)) =>
            {
                let provisional = if rng.random_bool(cfg.provisional_inf_prob.clamp(0.0, 1.0)) {
                    Time::INFINITY
                } else {
                    ev.ve
                        .saturating_add(rng.random_range(1..=cfg.provisional_extra_ms.max(1)))
                };
                staged.push((i, Element::insert(ev.payload.clone(), ev.vs, provisional)));
                staged.push((
                    usize::MAX, // adjusts go after every insert in the window
                    Element::adjust(ev.payload, ev.vs, provisional, ev.ve),
                ));
            }
            other => staged.push((i, other)),
        }
    }
    staged.sort_by_key(|(slot, _)| *slot);
    out.extend(staged.into_iter().map(|(_, e)| e));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenConfig;
    use crate::generator::generate;
    use lmerge_temporal::reconstitute::tdb_of;

    fn cfg() -> DivergenceConfig {
        DivergenceConfig::default()
    }

    #[test]
    fn copies_reconstitute_to_the_reference_tdb() {
        let r = generate(&GenConfig::small(300, 11));
        for copy in 0..4 {
            let d = diverge(&r.elements, &cfg(), copy);
            let tdb = tdb_of(&d).unwrap_or_else(|e| panic!("copy {copy} ill-formed: {e}"));
            assert_eq!(tdb, r.tdb, "copy {copy} diverged logically");
        }
    }

    #[test]
    fn copies_differ_physically() {
        let r = generate(&GenConfig::small(300, 12));
        let a = diverge(&r.elements, &cfg(), 0);
        let b = diverge(&r.elements, &cfg(), 1);
        assert_ne!(a, b, "copies should differ in physical form");
    }

    #[test]
    fn copies_are_deterministic() {
        let r = generate(&GenConfig::small(100, 13));
        assert_eq!(
            diverge(&r.elements, &cfg(), 2),
            diverge(&r.elements, &cfg(), 2)
        );
    }

    #[test]
    fn revision_paths_produce_adjusts() {
        let r = generate(&GenConfig::small(200, 14));
        let d = diverge(&r.elements, &cfg(), 0);
        assert!(
            d.iter().any(|e| e.is_adjust()),
            "revision_prob 0.3 over 200 events must stage adjusts"
        );
    }

    #[test]
    fn zero_revision_prob_keeps_insert_only() {
        let r = generate(&GenConfig::small(200, 15));
        let c = DivergenceConfig {
            revision_prob: 0.0,
            ..cfg()
        };
        let d = diverge(&r.elements, &c, 0);
        assert!(d.iter().all(|e| !e.is_adjust()));
    }

    #[test]
    fn final_stable_always_kept() {
        let r = generate(&GenConfig::small(50, 16));
        let c = DivergenceConfig {
            stable_keep_prob: 0.0,
            ..cfg()
        };
        let d = diverge(&r.elements, &c, 0);
        let stables: Vec<_> = d.iter().filter(|e| e.is_stable()).collect();
        assert_eq!(stables, vec![&Element::Stable(Time::INFINITY)]);
    }

    #[test]
    fn dropped_inserts_shrink_the_copy() {
        let r = generate(&GenConfig::small(200, 17));
        let c = DivergenceConfig {
            drop_prob: 0.2,
            revision_prob: 0.0,
            ..cfg()
        };
        let d = diverge(&r.elements, &c, 0);
        let kept = d.iter().filter(|e| e.is_insert()).count();
        assert!(
            kept < 195 && kept > 120,
            "expected ~20% dropped, kept {kept}"
        );
    }

    #[test]
    fn copies_survive_shuffling_across_many_seeds() {
        // Property-style sweep: every copy of every seed stays equivalent.
        for seed in 0..5u64 {
            let r = generate(&GenConfig::small(80, 100 + seed));
            for copy in 0..3 {
                let d = diverge(&r.elements, &cfg(), copy);
                assert_eq!(tdb_of(&d).unwrap(), r.tdb);
            }
        }
    }
}
