//! Workload generation for the LMerge evaluation.
//!
//! Reimplements the paper's synthetic stream generator (Section VI-B) and
//! the run-time phenomena its experiments inject:
//!
//! * [`config::GenConfig`] — the paper's knobs: `StableFreq`,
//!   `EventDuration`, `MaxGap`, `Disorder`, plus payload shape (an integer
//!   in `[0, 400]` and a 1000-byte body) and a seed;
//! * [`generator`] — produces a *reference* physical stream (and its
//!   logical TDB) honouring those knobs;
//! * [`divergence`] — derives N mutually consistent physical copies of the
//!   reference: reordered within punctuation constraints, with alternative
//!   revision paths (provisional end times later adjusted), so the copies
//!   differ in timing, order, and composition exactly as Section I
//!   describes;
//! * [`timing`] — assigns virtual arrival times at a configurable rate and
//!   injects the evaluation's timing phenomena: constant lag (Figure 5),
//!   random bursts (Figure 8), and congestion windows (Figure 9);
//! * [`union`] — a stable-correct union combinator (the paper's motivating
//!   "gather data from multiple sources" case);
//! * [`ticker`] — a synthetic stock-ticker workload with revision tuples,
//!   standing in for the paper's Yahoo! Finance sanity check;
//! * [`batched`] — the alternating-value-batch workload of the
//!   plan-switching experiment (Figure 10).

pub mod batched;
pub mod config;
pub mod divergence;
pub mod generator;
pub mod ticker;
pub mod timing;
pub mod union;

pub use config::GenConfig;
pub use divergence::{diverge, DivergenceConfig};
pub use generator::generate;
pub use timing::{assign_times, Timed};
