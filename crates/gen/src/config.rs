//! Generator configuration: the paper's Section VI-B parameters.

/// Parameters of the synthetic stream generator.
///
/// Quotes are from Section VI-B. Application time is in milliseconds.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Number of insert elements to produce ("between 200K and 400K").
    pub num_events: usize,
    /// "The probability that an element in the stream is a stable()
    /// element. … The default value of this parameter is 1%."
    pub stable_freq: f64,
    /// "The lifetime of each event." Default chosen so "around 10K elements
    /// are active at any point in time": with the default gap averaging
    /// 10 s, a 10 000-element active set needs ~`10_000 × 10_000` ms.
    pub event_duration_ms: i64,
    /// "The maximum application-time gap between consecutive elements. The
    /// gap is chosen randomly from the range [0, MaxGap]. We set MaxGap to
    /// 20 seconds."
    pub max_gap_ms: i64,
    /// Minimum gap between consecutive elements. Zero (the paper's setting)
    /// permits duplicate timestamps; set to 1 for the strictly increasing
    /// streams the R0 case requires.
    pub min_gap_ms: i64,
    /// "The fraction of disordered elements. Disorder is created by moving
    /// Vs values back by some amount. … The default value is 20%."
    pub disorder: f64,
    /// How far back a disordered `Vs` may be moved (bounds punctuation).
    pub disorder_window_ms: i64,
    /// Payload body size ("a randomly generated 1000-byte string").
    pub payload_len: usize,
    /// Payload keys are drawn from `[0, key_range]` ("an integer in the
    /// interval [0, 400]").
    pub key_range: i32,
    /// Probability that an event is emitted twice (an exact duplicate in
    /// the logical TDB). Non-zero values make the TDB a true multiset: only
    /// the R4 algorithm may merge such streams.
    pub duplicate_prob: f64,
    /// Whether the stream ends with `stable(∞)` (a complete stream).
    pub finalize: bool,
    /// RNG seed: every workload is reproducible.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            num_events: 200_000,
            stable_freq: 0.01,
            // Default active set ≈ duration / mean-gap = 10_000 events
            // with mean gap 10s ⇒ duration 100_000s; scaled down by using
            // a 1s mean gap in tests. Benches set this explicitly.
            event_duration_ms: 100_000_000,
            max_gap_ms: 20_000,
            min_gap_ms: 0,
            disorder: 0.20,
            disorder_window_ms: 60_000,
            payload_len: 1000,
            key_range: 400,
            duplicate_prob: 0.0,
            finalize: true,
            seed: 42,
        }
    }
}

impl GenConfig {
    /// A small, fast configuration for unit tests.
    pub fn small(num_events: usize, seed: u64) -> GenConfig {
        GenConfig {
            num_events,
            event_duration_ms: 500,
            max_gap_ms: 20,
            disorder_window_ms: 100,
            payload_len: 16,
            seed,
            ..Default::default()
        }
    }

    /// Builder-style setter for the disorder fraction.
    #[must_use]
    pub fn with_disorder(mut self, disorder: f64) -> GenConfig {
        self.disorder = disorder;
        self
    }

    /// Builder-style setter for `StableFreq`.
    #[must_use]
    pub fn with_stable_freq(mut self, f: f64) -> GenConfig {
        self.stable_freq = f;
        self
    }

    /// Builder-style setter for the event lifetime.
    #[must_use]
    pub fn with_event_duration_ms(mut self, d: i64) -> GenConfig {
        self.event_duration_ms = d;
        self
    }

    /// Builder-style setter for the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> GenConfig {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the payload body length.
    #[must_use]
    pub fn with_payload_len(mut self, len: usize) -> GenConfig {
        self.payload_len = len;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GenConfig::default();
        assert_eq!(c.stable_freq, 0.01, "1% stable elements");
        assert_eq!(c.max_gap_ms, 20_000, "MaxGap 20 seconds");
        assert_eq!(c.disorder, 0.20, "20% disorder");
        assert_eq!(c.payload_len, 1000);
        assert_eq!(c.key_range, 400);
    }

    #[test]
    fn builders_compose() {
        let c = GenConfig::small(10, 7)
            .with_disorder(0.5)
            .with_stable_freq(0.001)
            .with_event_duration_ms(40)
            .with_payload_len(8);
        assert_eq!(c.num_events, 10);
        assert_eq!(c.disorder, 0.5);
        assert_eq!(c.stable_freq, 0.001);
        assert_eq!(c.event_duration_ms, 40);
        assert_eq!(c.payload_len, 8);
        assert_eq!(c.seed, 7);
    }
}
