//! Arrival-time assignment and timing-fault injection.
//!
//! The evaluation's timing phenomena are all perturbations of when elements
//! *arrive* at a query, expressed in virtual time:
//!
//! * [`assign_times`] — a constant presentation rate ("presented at a rate
//!   of 5000 elements/sec", Section VI-E);
//! * [`add_lag`] — a fixed delay ("we simulate lag on two of the input
//!   streams by delaying event generation by a fixed amount of time",
//!   Figure 5);
//! * [`add_bursts`] — "inserting random delays between tuples in a stream
//!   with a small probability (between 0.3 and 0.5%). The delays are chosen
//!   from a truncated normal distribution with mean 20 and standard
//!   deviation 5" (Figure 8); a delay between tuples pushes every later
//!   tuple back, creating queue build-up and compensating spikes;
//! * [`add_congestion`] — delays confined to a congestion window
//!   (Figure 9).

use lmerge_temporal::{Element, VTime, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An element with its virtual arrival time.
pub type Timed = (VTime, Element<Value>);

/// Spread elements at a constant rate of `rate_eps` elements per virtual
/// second, starting at `VTime::ZERO`.
pub fn assign_times(elements: &[Element<Value>], rate_eps: f64) -> Vec<Timed> {
    assert!(rate_eps > 0.0, "rate must be positive");
    let gap_us = 1_000_000.0 / rate_eps;
    elements
        .iter()
        .enumerate()
        .map(|(i, e)| (VTime((i as f64 * gap_us) as u64), e.clone()))
        .collect()
}

/// Delay every arrival by a fixed amount (µs).
pub fn add_lag(timed: &mut [Timed], lag_us: u64) {
    for (at, _) in timed.iter_mut() {
        *at = at.advance(lag_us);
    }
}

/// Sample a truncated (at zero) normal via Box–Muller.
fn trunc_normal(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mean + std * z).max(0.0)
}

/// Inject bursts: with probability `prob` per element, insert an extra
/// delay ~ truncNormal(`mean_ms`, `std_ms`) *between* elements — shifting
/// this and all later arrivals (queue build-up followed by a spike when the
/// backlog drains).
pub fn add_bursts(timed: &mut [Timed], prob: f64, mean_ms: f64, std_ms: f64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shift_us: u64 = 0;
    for (at, _) in timed.iter_mut() {
        if rng.random_bool(prob.clamp(0.0, 1.0)) {
            shift_us += (trunc_normal(&mut rng, mean_ms, std_ms) * 1000.0) as u64;
        }
        *at = at.advance(shift_us);
    }
}

/// Inject congestion: arrivals inside `[from, to)` are spaced out by an
/// extra normally distributed delay each (mean/std in ms), pushing later
/// elements back cumulatively; arrivals after the window keep only the
/// accumulated backlog (which then drains as a spike).
pub fn add_congestion(
    timed: &mut [Timed],
    from: VTime,
    to: VTime,
    mean_ms: f64,
    std_ms: f64,
    seed: u64,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shift_us: u64 = 0;
    for (at, _) in timed.iter_mut() {
        if *at >= from && *at < to {
            shift_us += (trunc_normal(&mut rng, mean_ms, std_ms) * 1000.0) as u64;
        }
        *at = at.advance(shift_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmerge_temporal::Value;

    fn elems(n: usize) -> Vec<Element<Value>> {
        (0..n)
            .map(|i| Element::insert(Value::bare(i as i32), i as i64, i as i64 + 10))
            .collect()
    }

    #[test]
    fn constant_rate_spacing() {
        let t = assign_times(&elems(5), 1000.0); // 1 per ms
        assert_eq!(t[0].0, VTime(0));
        assert_eq!(t[1].0, VTime(1000));
        assert_eq!(t[4].0, VTime(4000));
    }

    #[test]
    fn lag_shifts_uniformly() {
        let mut t = assign_times(&elems(3), 1000.0);
        add_lag(&mut t, 500_000);
        assert_eq!(t[0].0, VTime(500_000));
        assert_eq!(t[2].0, VTime(502_000));
    }

    #[test]
    fn bursts_only_ever_delay() {
        let base = assign_times(&elems(1000), 5000.0);
        let mut t = base.clone();
        add_bursts(&mut t, 0.005, 20.0, 5.0, 1);
        let mut delayed = 0;
        for (b, a) in base.iter().zip(&t) {
            assert!(a.0 >= b.0, "bursts never move arrivals earlier");
            if a.0 > b.0 {
                delayed += 1;
            }
        }
        assert!(delayed > 0, "some elements must be hit");
        // Arrivals stay monotone.
        assert!(t.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn congestion_confined_to_window_start() {
        let base = assign_times(&elems(1000), 1000.0); // 1 ms apart, 1 s total
        let mut t = base.clone();
        add_congestion(
            &mut t,
            VTime::from_millis(200),
            VTime::from_millis(400),
            5.0,
            1.0,
            2,
        );
        // Before the window: untouched.
        assert_eq!(t[100].0, base[100].0);
        // Inside and after: pushed back.
        assert!(t[300].0 > base[300].0);
        assert!(t[900].0 > base[900].0, "backlog persists after the window");
    }

    #[test]
    fn trunc_normal_is_nonnegative_and_centred() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..2000)
            .map(|_| trunc_normal(&mut rng, 20.0, 5.0))
            .collect();
        assert!(samples.iter().all(|s| *s >= 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((18.0..22.0).contains(&mean), "mean ≈ 20, got {mean}");
    }
}
