//! # lmerge — Physically Independent Stream Merging
//!
//! Umbrella crate re-exporting the whole workspace: a production-quality
//! Rust reproduction of *Physically Independent Stream Merging*
//! (Chandramouli, Maier, Goldstein, ICDE 2012) — the **Logical Merge
//! (LMerge)** operator, which merges multiple physically divergent but
//! logically consistent data streams into a single stream compatible with
//! all of them.
//!
//! ## Quick start
//!
//! ```
//! use lmerge::core::{LMergeR3, LogicalMerge};
//! use lmerge::temporal::{Element, Time};
//!
//! // Two physically different presentations of the same logical stream.
//! let mut lm: LMergeR3<&str> = LMergeR3::new(2);
//! let mut out = Vec::new();
//!
//! // Input 0 inserts A with a provisional end; input 1 already knows more.
//! lm.push(lmerge::temporal::StreamId(0), &Element::insert("A", 6, 7), &mut out);
//! lm.push(lmerge::temporal::StreamId(1), &Element::insert("A", 6, 12), &mut out);
//! lm.push(lmerge::temporal::StreamId(1), &Element::stable(20), &mut out);
//!
//! // The merged output reconstitutes to the single event ⟨A, [6, 12)⟩.
//! let tdb = lmerge::temporal::reconstitute::tdb_of(&out).unwrap();
//! assert_eq!(tdb.count(&"A", Time(6), Time(12)), 1);
//! ```
//!
//! ## Layout
//!
//! * [`temporal`] — the stream/TDB model (Section III of the paper).
//! * [`properties`] — compile-time stream properties and algorithm selection.
//! * [`core`] — the LMerge algorithms R0–R4, policies, attach/detach,
//!   feedback (Sections IV and V).
//! * [`engine`] — a mini-DSMS substrate: operators, plans, virtual-time
//!   executor, metrics (the StreamInsight stand-in for Section VI).
//! * [`obs`] — virtual-time tracing and diagnostics: event traces, per-input
//!   lag gauges, log-bucketed histograms, JSONL / Chrome-trace exporters.
//! * [`gen`] — the paper's synthetic workload generator and divergence /
//!   lag / burst / congestion models (Section VI-B).
//! * [`chaos`] — deterministic fault injection (crash, rejoin, duplicate,
//!   reorder, frozen stables, stalls, overflow, merge-process crashes) and
//!   the differential conformance harness that replays one fault plan
//!   across the spectrum.
//! * [`durable`] — checkpoint/restore and log-structured spill: versioned,
//!   checksummed snapshot + delta files, sorted on-disk runs with a k-way
//!   merge cursor, and the checkpoint sink that makes a restarted merge
//!   byte-identical to one that never died.
//! * [`net`] — wire protocol + TCP ingest/egress: physically independent
//!   replicas feeding LMerge over real sockets, with credit backpressure,
//!   crash/resume sessions, and a fault-injecting chaos proxy.
//! * [`sub`] — shared incremental fan-out: an epoch-batched broadcast
//!   buffer over the merged output, subscriber sessions with resume
//!   cursors and credit backpressure (the ingest protocol mirrored), and
//!   per-epoch shared filter bitmaps.

pub use lmerge_chaos as chaos;
pub use lmerge_core as core;
pub use lmerge_durable as durable;
pub use lmerge_engine as engine;
pub use lmerge_gen as gen;
pub use lmerge_net as net;
pub use lmerge_obs as obs;
pub use lmerge_properties as properties;
pub use lmerge_sub as sub;
pub use lmerge_temporal as temporal;
