//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of `rand` the workload generators use:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng::random_range`] / [`Rng::random_bool`] methods, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 — not cryptographic, but statistically solid
//! for workload synthesis, with full 64-bit output and deterministic
//! streams per seed (the property every experiment here depends on).
//! Sequences differ from upstream `rand`; nothing in this workspace pins
//! exact sequences, only per-seed determinism.

/// Low-level uniform word source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` (53-bit precision).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type usable as the argument of [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from an integer or float range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    //! Sequence-related sampling.

    use super::{Rng, RngCore};

    /// Random slice operations.
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Convenience prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0..1_000_000u64)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0..1_000_000u64)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.random_range(0..1_000_000u64)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_reaches_both_ends() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.random_range(0..=2usize)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "got {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "astronomically unlikely to be identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "same multiset");
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.random_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "skewed bucket: {buckets:?}");
        }
    }
}
