//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of `bytes` it actually uses: [`Bytes`] (an immutable,
//! cheaply-cloneable shared byte buffer), [`BytesMut`] (a growable builder),
//! and the [`BufMut`] write trait. Semantics match upstream where it
//! matters: cloning a [`Bytes`] shares the backing allocation (`as_ptr`
//! equality holds across clones), and `freeze` converts a builder without
//! copying more than once.

use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Clones share storage.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer (no allocation is shared, but cloning is still O(1)).
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copy a slice into a fresh shared buffer.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(src),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter().take(16) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 16 {
            write!(f, "…({}B)", self.len())?;
        }
        write!(f, "\"")
    }
}

/// A growable byte builder; [`freeze`](BytesMut::freeze) converts it into a
/// shared [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// A builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Grow or shrink to `len`, filling new space with `fill`.
    pub fn resize(&mut self, len: usize, fill: u8) {
        self.data.resize(len, fill);
    }

    /// Convert into an immutable shared buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Append-only write operations.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a `u64` in little-endian byte order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u32` in little-endian byte order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn builder_roundtrip() {
        let mut m = BytesMut::with_capacity(12);
        m.put_u64_le(0x0102030405060708);
        m.put_slice(b"ok");
        assert_eq!(m.len(), 10);
        let b = m.freeze();
        assert_eq!(&b[..8], &0x0102030405060708u64.to_le_bytes());
        assert_eq!(&b[8..], b"ok");
    }

    #[test]
    fn ordering_and_hash_follow_content() {
        use std::collections::HashMap;
        let a = Bytes::copy_from_slice(b"aa");
        let b = Bytes::copy_from_slice(b"ab");
        assert!(a < b);
        let mut m = HashMap::new();
        m.insert(a.clone(), 1);
        assert_eq!(m.get(&Bytes::copy_from_slice(b"aa")), Some(&1));
    }

    #[test]
    fn empty_and_debug() {
        assert!(Bytes::new().is_empty());
        let d = format!("{:?}", Bytes::copy_from_slice(b"hi"));
        assert!(d.contains("hi"));
    }
}
