//! Dynamic plan selection with fast-forward feedback (paper Sections II-3,
//! V-D, and VI-E-3): two plans whose costs favour different data batches,
//! merged by LMerge; feedback signals let the momentarily-slower plan skip
//! dead work and stay ready to take over.
//!
//! Run with: `cargo run --example plan_switching`

use lmerge::core::{LMergeR3, LogicalMerge};
use lmerge::engine::ops::UdfSelect;
use lmerge::engine::{MergeRun, Operator, Query, RunConfig, TimedElement};
use lmerge::gen::batched::{generate_batched, BatchedConfig};
use lmerge::temporal::{VTime, Value};

fn build_query(cfg: &BatchedConfig, expensive_small: bool) -> Query<Value> {
    let (elems, _) = generate_batched(cfg);
    let source: Vec<TimedElement<Value>> = elems
        .into_iter()
        .map(|e| TimedElement::new(VTime::ZERO, e))
        .collect();
    let udf = if expensive_small {
        UdfSelect::udf0(200, 800, 20)
    } else {
        UdfSelect::udf1(200, 800, 20)
    };
    Query::new(source, vec![Box::new(udf) as Box<dyn Operator<Value>>]).with_base_cost(0)
}

fn run(feedback: bool, cfg: &BatchedConfig) -> f64 {
    let queries = vec![build_query(cfg, true), build_query(cfg, false)];
    let lmerge: Box<dyn LogicalMerge<Value>> = Box::new(LMergeR3::new(2));
    let metrics = MergeRun::new(
        queries,
        lmerge,
        RunConfig {
            feedback,
            ..Default::default()
        },
    )
    .run();
    metrics.completion().as_secs_f64()
}

fn main() {
    let cfg = BatchedConfig {
        num_events: 40_000,
        min_batch: 3_600,
        max_batch: 4_400,
        event_duration_ms: 400,
        stable_every: 200,
        ..Default::default()
    };
    println!("two equivalent plans; batches alternate between the value");
    println!("ranges each plan is slow on — the optimal plan keeps switching\n");

    let plain = run(false, &cfg);
    println!("LMerge without feedback: {plain:.1} virtual seconds");
    let fed = run(true, &cfg);
    println!("LMerge with feedback:    {fed:.1} virtual seconds");
    println!("\nfast-forward speedup: {:.1}x", plain / fed);
    assert!(fed < plain, "feedback must not slow the query down");
}
