//! Query cutover (paper Section II-5): move a running query to a new
//! instance — possibly a different physical plan — "without the user or
//! application being explicitly aware of such a switch".
//!
//! The old instance keeps serving while the new one spins up and replays;
//! LMerge absorbs the replayed duplicates, and once the newcomer is caught
//! up (its join point is covered), the old instance detaches. The output is
//! one uninterrupted, duplicate-free stream.
//!
//! Run with: `cargo run --example query_cutover`

use lmerge::core::{LMergeR3, LogicalMerge};
use lmerge::engine::ops::IntervalCount;
use lmerge::engine::Operator;
use lmerge::gen::{diverge, generate, DivergenceConfig, GenConfig};
use lmerge::temporal::reconstitute::tdb_of;
use lmerge::temporal::{Element, StreamId, Time, Value};

/// Run the (logical) query — a grouped count — over one physical
/// presentation of the source.
fn run_plan(input: &[Element<Value>], groups: u32) -> Vec<Element<Value>> {
    let mut agg = IntervalCount::new(groups);
    let mut out = Vec::new();
    let mut buf = Vec::new();
    for e in input {
        buf.clear();
        agg.on_element(e, &mut buf);
        out.append(&mut buf);
    }
    out
}

fn main() {
    let cfg = GenConfig {
        num_events: 8_000,
        disorder: 0.2,
        disorder_window_ms: 500,
        stable_freq: 0.01,
        event_duration_ms: 100,
        max_gap_ms: 20,
        payload_len: 16,
        ..Default::default()
    };
    let reference = generate(&cfg);
    let div = DivergenceConfig::default();

    // Old and new instances see different physical presentations of the
    // same source (different network paths, different buffering).
    let old_feed = diverge(&reference.elements, &div, 0);
    let new_feed = diverge(&reference.elements, &div, 1);
    let old_out = run_plan(&old_feed, 4);
    let new_out = run_plan(&new_feed, 4);
    let want = tdb_of(&old_out).expect("plan output well formed");
    assert_eq!(tdb_of(&new_out).unwrap(), want, "plans are equivalent");

    // Consumer-side LMerge. The old instance runs alone at first.
    let mut lm: LMergeR3<Value> = LMergeR3::new(1);
    let mut out = Vec::new();
    let cut_old = old_out.len() * 2 / 3; // old instance serves 2/3 of the way
    let spin_up = old_out.len() / 3; // new instance attaches at 1/3

    for e in &old_out[..spin_up] {
        lm.push(StreamId(0), e, &mut out);
    }
    // New instance attaches; it replays from the logical beginning, so its
    // join point is MIN (it will be correct for everything).
    let new_id = lm.attach(Time::MIN);
    println!(
        "new instance attached after {} old-instance elements (output so far: {})",
        spin_up,
        out.len()
    );

    // Both run in parallel; the newcomer replays (duplicates absorbed).
    let before_parallel = lm.stats().dropped;
    let mut new_cursor = 0usize;
    for e in &old_out[spin_up..cut_old] {
        lm.push(StreamId(0), e, &mut out);
        // The replaying newcomer runs at ~3x to catch up.
        for _ in 0..3 {
            if let Some(ne) = new_out.get(new_cursor) {
                lm.push(new_id, ne, &mut out);
                new_cursor += 1;
            }
        }
    }
    println!(
        "during parallel operation LMerge absorbed {} duplicate elements",
        lm.stats().dropped - before_parallel
    );

    // Cut over: the old instance detaches; the new one finishes the job.
    lm.detach(StreamId(0));
    println!("old instance detached (cutover complete)");
    for e in &new_out[new_cursor..] {
        lm.push(new_id, e, &mut out);
    }

    let merged = tdb_of(&out).expect("output well formed throughout");
    assert_eq!(merged, want, "cutover must be invisible in the output");
    println!(
        "merged output: {} logical events — identical to an uninterrupted run",
        merged.len()
    );
}
