//! Merging revision-laden market-data feeds (the paper's stock-ticker
//! scenario: "commercial stock ticker feeds issue revision tuples to amend
//! previously issued tuples").
//!
//! Two brokers relay the same exchange feed. Quotes arrive open-ended and
//! are adjusted when superseded or amended; the relays disagree on order
//! and on which provisional values they saw. LMerge reconstructs one clean
//! feed.
//!
//! Run with: `cargo run --example ticker_merge`

use lmerge::core::{LMergeR4, LogicalMerge};
use lmerge::gen::ticker::{generate_ticker, TickerConfig};
use lmerge::gen::{diverge, DivergenceConfig};
use lmerge::temporal::reconstitute::tdb_of;
use lmerge::temporal::StreamId;

fn main() {
    let exchange = generate_ticker(&TickerConfig {
        num_quotes: 5_000,
        symbols: 25,
        amend_prob: 0.03,
        ..Default::default()
    });
    println!(
        "exchange feed: {} elements ({} revisions)",
        exchange.len(),
        exchange.iter().filter(|e| e.is_adjust()).count()
    );

    // Two relays present the feed differently (order + punctuation).
    // Revision paths are already in the data, so the divergence only
    // reorders within punctuation windows.
    let div = DivergenceConfig {
        revision_prob: 0.0,
        stable_keep_prob: 0.5,
        ..Default::default()
    };
    let relays: Vec<_> = (0..2).map(|i| diverge(&exchange, &div, i)).collect();

    // Ticker streams can carry duplicate (Vs, Payload) moments in general,
    // so use the fully general R4 merge.
    let mut lmerge = LMergeR4::new(2);
    let mut output = Vec::new();
    let longest = relays.iter().map(Vec::len).max().unwrap_or(0);
    for k in 0..longest {
        for (i, relay) in relays.iter().enumerate() {
            if let Some(e) = relay.get(k) {
                lmerge.push(StreamId(i as u32), e, &mut output);
            }
        }
    }

    let merged = tdb_of(&output).expect("merged feed well formed");
    let original = tdb_of(&exchange).expect("exchange feed well formed");
    assert_eq!(merged, original, "merged feed must equal the exchange feed");
    println!(
        "merged feed: {} output elements reconstruct all {} quotes exactly",
        output.len(),
        original.len()
    );
    let stats = lmerge.stats();
    println!(
        "absorbed {} duplicate elements across relays; emitted {} corrective adjusts",
        stats.dropped, stats.adjusts_out
    );
}
