//! High availability (paper Section II-1): run three replicas of a query,
//! kill two of them mid-stream, attach a fresh replacement — the merged
//! output never misses a beat.
//!
//! Run with: `cargo run --example high_availability`

use lmerge::core::{LMergeR3, LogicalMerge};
use lmerge::gen::{diverge, generate, DivergenceConfig, GenConfig};
use lmerge::temporal::consistency::all_equivalent;
use lmerge::temporal::reconstitute::tdb_of;
use lmerge::temporal::{StreamId, Time};

fn main() {
    // One logical stream, three physically divergent replicas.
    let cfg = GenConfig::small(3_000, 7);
    let reference = generate(&cfg);
    let div = DivergenceConfig::default();
    let replicas: Vec<_> = (0..4)
        .map(|i| diverge(&reference.elements, &div, i))
        .collect();

    let mut lmerge = LMergeR3::new(3);
    let mut output = Vec::new();
    let mut cursors = [0usize; 4];
    let mut spare_attached: Option<StreamId> = None;

    // Round-robin the three replicas; fail replica 0 after 30% and replica 1
    // after 60%; attach the spare (replica 3) when the first failure hits.
    let fail_at_0 = replicas[0].len() * 3 / 10;
    let fail_at_1 = replicas[1].len() * 6 / 10;
    let mut step = 0usize;
    loop {
        let mut progressed = false;
        for r in 0..4usize {
            let id = match r {
                3 => match spare_attached {
                    Some(id) => id,
                    None => continue, // not attached yet
                },
                _ => StreamId(r as u32),
            };
            if r == 0 && cursors[0] == fail_at_0 {
                println!("!! replica 0 fails at element {step}");
                lmerge.detach(StreamId(0));
                // Spin up a replacement: it replays from the beginning, so
                // it joins with full coverage (Time::MIN).
                let sid = lmerge.attach(Time::MIN);
                println!("++ spare replica attached as input {}", sid.0);
                spare_attached = Some(sid);
                cursors[0] = usize::MAX; // never serve again
                continue;
            }
            if r == 1 && cursors[1] == fail_at_1 {
                println!("!! replica 1 fails at element {step}");
                lmerge.detach(StreamId(1));
                cursors[1] = usize::MAX;
                continue;
            }
            if cursors[r] == usize::MAX || cursors[r] >= replicas[r].len() {
                continue;
            }
            lmerge.push(id, &replicas[r][cursors[r]], &mut output);
            cursors[r] += 1;
            step += 1;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }

    let merged = tdb_of(&output).expect("output well formed");
    println!(
        "\nsurvived 2 failures: merged TDB has {} events (reference has {})",
        merged.len(),
        reference.tdb.len()
    );
    assert!(all_equivalent(&[&merged, &reference.tdb]));
    println!("merged output ≡ reference stream — no losses, no duplicates");
    let stats = lmerge.stats();
    println!(
        "stats: {} inserts in → {} out, {} duplicates absorbed",
        stats.inserts_in, stats.inserts_out, stats.dropped
    );
}
