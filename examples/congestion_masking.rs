//! Fast availability (paper Sections II-2 and VI-E-2): three copies of a
//! query suffer network congestion at different times; the merged output
//! stays steady throughout.
//!
//! Run with: `cargo run --example congestion_masking`

use lmerge::core::{LMergeR3, LogicalMerge};
use lmerge::engine::{MergeRun, Query, RunConfig, TimedElement};
use lmerge::gen::timing::add_congestion;
use lmerge::gen::{assign_times, diverge, generate, DivergenceConfig, GenConfig};
use lmerge::temporal::{VTime, Value};

fn main() {
    let cfg = GenConfig {
        num_events: 20_000,
        disorder: 0.2,
        disorder_window_ms: 2_000,
        stable_freq: 0.01,
        event_duration_ms: 1_000,
        max_gap_ms: 20,
        payload_len: 32,
        ..Default::default()
    };
    let reference = generate(&cfg);
    let div = DivergenceConfig::default();

    // Copy i gets congested during seconds [2i+1, 2i+2).
    let queries: Vec<Query<Value>> = (0..3u64)
        .map(|i| {
            let copy = diverge(&reference.elements, &div, i);
            let mut timed = assign_times(&copy, 5_000.0);
            add_congestion(
                &mut timed,
                VTime::from_secs(2 * i + 1),
                VTime::from_secs(2 * i + 2),
                1.5,
                0.4,
                77 + i,
            );
            Query::passthrough(
                timed
                    .into_iter()
                    .map(|(at, e)| TimedElement::new(at, e))
                    .collect(),
            )
        })
        .collect();

    let lmerge: Box<dyn LogicalMerge<Value>> = Box::new(LMergeR3::new(3));
    let metrics = MergeRun::new(queries, lmerge, RunConfig::default()).run();

    println!("per-second delivery rates (elements/s):");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>10}",
        "sec", "in0", "in1", "in2", "output"
    );
    let last = metrics.drained_at.as_micros() / 1_000_000;
    for s in 0..=last {
        println!(
            "{:>6} {:>8} {:>8} {:>8} {:>10}",
            s,
            metrics.input_series[0].at(s),
            metrics.input_series[1].at(s),
            metrics.input_series[2].at(s),
            metrics.output_series.at(s),
        );
    }
    println!(
        "\noutput CV {:.3} vs worst input CV {:.3} — congestion masked",
        metrics.output_series.coefficient_of_variation(),
        metrics
            .input_series
            .iter()
            .map(|s| s.coefficient_of_variation())
            .fold(0.0, f64::max)
    );
    println!(
        "mean merge latency: {:.1} ms",
        metrics.mean_latency_us() / 1000.0
    );
}
