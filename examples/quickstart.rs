//! Quickstart: merge two physically different presentations of one logical
//! stream and watch LMerge keep the output compatible with both.
//!
//! Run with: `cargo run --example quickstart`

use lmerge::core::{LMergeR3, LogicalMerge};
use lmerge::temporal::reconstitute::tdb_of;
use lmerge::temporal::{Element, StreamId, Time};

fn main() {
    // The two physical streams of the paper's Table I, in the StreamInsight
    // element model. They differ in order, provisional end times, and
    // punctuation — but describe the same temporal database:
    //   A valid over [6, 12), B valid over [8, 10).
    let phy1: Vec<Element<&str>> = vec![
        Element::insert("B", 8, Time::INFINITY),
        Element::insert("A", 6, 12),
        Element::adjust("B", 8, Time::INFINITY, Time(10)),
        Element::stable(11),
        Element::stable(Time::INFINITY),
    ];
    let phy2: Vec<Element<&str>> = vec![
        Element::insert("A", 6, 7),
        Element::insert("B", 8, 15),
        Element::adjust("A", 6, 7, 12),
        Element::adjust("B", 8, 15, 10),
        Element::stable(Time::INFINITY),
    ];

    let mut lmerge: LMergeR3<&str> = LMergeR3::new(2);
    let mut output = Vec::new();

    // Interleave the two inputs, as a network would.
    let (mut i1, mut i2) = (phy1.iter(), phy2.iter());
    loop {
        match (i1.next(), i2.next()) {
            (None, None) => break,
            (a, b) => {
                for (input, e) in [(0u32, a), (1u32, b)] {
                    if let Some(e) = e {
                        let before = output.len();
                        lmerge.push(StreamId(input), e, &mut output);
                        for out in &output[before..] {
                            println!("in{input}: {e:?}  →  out: {out:?}");
                        }
                        if output.len() == before {
                            println!("in{input}: {e:?}  →  (absorbed)");
                        }
                    }
                }
            }
        }
    }

    let tdb = tdb_of(&output).expect("LMerge output is always well formed");
    println!("\nmerged logical content: {tdb:?}");
    println!(
        "elements in: {}, elements out: {} (no duplicates, no losses)",
        phy1.len() + phy2.len(),
        output.len()
    );
    assert_eq!(tdb.count(&"A", Time(6), Time(12)), 1);
    assert_eq!(tdb.count(&"B", Time(8), Time(10)), 1);
}
