//! Quickstart: merge two physically different presentations of one logical
//! stream and watch LMerge keep the output compatible with both — then
//! re-run the same merge under the engine with tracing on, print the
//! observability summary, and write a Chrome trace-event timeline.
//!
//! Run with: `cargo run --example quickstart`

use lmerge::core::{LMergeR3, LogicalMerge};
use lmerge::engine::{MergeRun, Query, RunConfig, TimedElement};
use lmerge::obs::Tracer;
use lmerge::temporal::reconstitute::tdb_of;
use lmerge::temporal::{Element, StreamId, Time, VTime};

fn main() {
    // The two physical streams of the paper's Table I, in the StreamInsight
    // element model. They differ in order, provisional end times, and
    // punctuation — but describe the same temporal database:
    //   A valid over [6, 12), B valid over [8, 10).
    let phy1: Vec<Element<&str>> = vec![
        Element::insert("B", 8, Time::INFINITY),
        Element::insert("A", 6, 12),
        Element::adjust("B", 8, Time::INFINITY, Time(10)),
        Element::stable(11),
        Element::stable(Time::INFINITY),
    ];
    let phy2: Vec<Element<&str>> = vec![
        Element::insert("A", 6, 7),
        Element::insert("B", 8, 15),
        Element::adjust("A", 6, 7, 12),
        Element::adjust("B", 8, 15, 10),
        Element::stable(Time::INFINITY),
    ];

    let mut lmerge: LMergeR3<&str> = LMergeR3::new(2);
    let mut output = Vec::new();

    // Interleave the two inputs, as a network would.
    let (mut i1, mut i2) = (phy1.iter(), phy2.iter());
    loop {
        match (i1.next(), i2.next()) {
            (None, None) => break,
            (a, b) => {
                for (input, e) in [(0u32, a), (1u32, b)] {
                    if let Some(e) = e {
                        let before = output.len();
                        lmerge.push(StreamId(input), e, &mut output);
                        for out in &output[before..] {
                            println!("in{input}: {e:?}  →  out: {out:?}");
                        }
                        if output.len() == before {
                            println!("in{input}: {e:?}  →  (absorbed)");
                        }
                    }
                }
            }
        }
    }

    let tdb = tdb_of(&output).expect("LMerge output is always well formed");
    println!("\nmerged logical content: {tdb:?}");
    println!(
        "elements in: {}, elements out: {} (no duplicates, no losses)",
        phy1.len() + phy2.len(),
        output.len()
    );
    assert_eq!(tdb.count(&"A", Time(6), Time(12)), 1);
    assert_eq!(tdb.count(&"B", Time(8), Time(10)), 1);

    // Part two: the same merge under the virtual-time engine, traced. Each
    // input element arrives 1 ms after the previous one on its stream.
    let timed = |elems: &[Element<&'static str>], offset_us: u64| {
        elems
            .iter()
            .enumerate()
            .map(|(k, e)| TimedElement::new(VTime(offset_us + 1_000 * k as u64), e.clone()))
            .collect::<Vec<_>>()
    };
    let queries = vec![
        Query::passthrough(timed(&phy1, 0)),
        Query::passthrough(timed(&phy2, 500)),
    ];
    let mut tracer = Tracer::new();
    let metrics = MergeRun::new(
        queries,
        Box::new(LMergeR3::<&str>::new(2)),
        RunConfig::default(),
    )
    .run_with(&mut tracer);

    println!("\n— traced run —");
    print!("{}", tracer.summary());
    println!(
        "throughput: {:.0} el/s (virtual), p99 latency: {} µs",
        metrics.throughput_eps(),
        metrics.latency_quantile_us(0.99)
    );

    // A Chrome trace-event timeline: open in about://tracing or Perfetto.
    let path = std::env::temp_dir().join("lmerge_quickstart_trace.json");
    if std::fs::write(&path, tracer.to_chrome_trace()).is_ok() {
        println!("chrome trace written to {}", path.display());
    }
}
