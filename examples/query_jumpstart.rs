//! Query jumpstart (paper Section II-4): a restarted query would take ages
//! to rebuild state from the live stream alone — long-lived events that
//! started before the restart are simply gone. Seeding through LMerge with
//! a checkpoint stream (state from disk or from a running copy) makes the
//! query whole immediately.
//!
//! Run with: `cargo run --example query_jumpstart`

use lmerge::core::{LMergeR3, LogicalMerge};
use lmerge::gen::{generate, GenConfig};
use lmerge::temporal::reconstitute::tdb_of;
use lmerge::temporal::{Element, StreamId, Tdb, Time, Value};

fn main() {
    // A long-running source with long-lived events (think OS processes
    // that have been running for days).
    let cfg = GenConfig {
        num_events: 5_000,
        disorder: 0.0,
        disorder_window_ms: 0,
        stable_freq: 0.01,
        event_duration_ms: 5_000, // long lifetimes relative to the gap
        max_gap_ms: 20,
        min_gap_ms: 1, // distinct timestamps give a crisp restart boundary
        payload_len: 16,
        ..Default::default()
    };
    let reference = generate(&cfg);

    // The query instance dies 70% of the way in.
    let split = reference.elements.len() * 7 / 10;
    let (history, live) = reference.elements.split_at(split);
    let restart_time = history
        .iter()
        .filter_map(|e| e.key().map(|(vs, _)| vs))
        .max()
        .unwrap_or(Time::ZERO);
    // The checkpoint is complete for everything before the live stream's
    // first event: promising stability up to there protects the seeded
    // events from the missing-element rule once the checkpoint detaches.
    let live_start = live
        .iter()
        .filter_map(|e| e.key().map(|(vs, _)| vs))
        .min()
        .unwrap_or(restart_time);

    // What the world looked like at the restart: every event still alive.
    let history_tdb = tdb_of(history).expect("history well formed");
    let checkpoint_events: Vec<(Value, Time, Time)> = history_tdb
        .iter()
        .filter(|(_, ve, _)| *ve >= restart_time)
        .map(|((vs, p), ve, _)| (p.clone(), *vs, ve))
        .collect();
    println!(
        "query restarts at t={restart_time}: {} events still alive in lost state",
        checkpoint_events.len()
    );

    // Cold restart: only the live stream.
    let cold: Tdb<Value> = {
        let mut lm: LMergeR3<Value> = LMergeR3::new(1);
        let mut out = Vec::new();
        for e in live {
            lm.push(StreamId(0), e, &mut out);
        }
        tdb_of(&out).unwrap()
    };

    // Jumpstart: LMerge over (checkpoint stream, live stream). The
    // checkpoint replays the surviving state as inserts, then promises it
    // is complete up to the restart time.
    let jumpstarted: Tdb<Value> = {
        let mut lm: LMergeR3<Value> = LMergeR3::new(2);
        let mut out = Vec::new();
        for (p, vs, ve) in &checkpoint_events {
            lm.push(StreamId(0), &Element::insert(p.clone(), *vs, *ve), &mut out);
        }
        lm.push(StreamId(0), &Element::stable(live_start), &mut out);
        // The checkpoint source is finite: detach it and run on live data.
        lm.detach(StreamId(0));
        for e in live {
            lm.push(StreamId(1), e, &mut out);
        }
        tdb_of(&out).unwrap()
    };

    // Ground truth: everything relevant after the restart.
    let expected: Tdb<Value> = reference
        .tdb
        .iter()
        .filter(|(_, ve, _)| *ve >= restart_time)
        .flat_map(|((vs, p), ve, c)| {
            std::iter::repeat_with(move || lmerge::temporal::Event::new(p.clone(), *vs, ve)).take(c)
        })
        .collect();

    println!(
        "cold restart recovers {} events; jumpstarted recovers {} (expected {})",
        cold.len(),
        jumpstarted.len(),
        expected.len()
    );
    assert_eq!(jumpstarted, expected, "jumpstart must be complete");
    assert!(
        cold.len() < expected.len(),
        "cold restart must actually be missing state for this demo"
    );
    println!(
        "jumpstart recovered {} long-lived events a cold restart lost",
        expected.len() - cold.len()
    );
}
